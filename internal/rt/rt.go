// Package rt is the real-time runtime: it hosts the same protocol
// handlers that run in the simulator (client, coordinator, server) on a
// real machine, with TCP sockets, the wall clock and a file-backed
// disk. The cmd/ daemons and the quickstart example are built on it.
//
// Communication is connection-less exactly as the paper prescribes: for
// any interaction, a connection is opened, one message is written, and
// the connection is closed immediately. Connection breaks are therefore
// never used as fault signals — only heartbeat timeouts are.
//
// Each runtime runs its handler on a single event loop goroutine, so
// handlers keep the no-locking discipline they have under the
// simulator.
package rt

import (
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"rpcv/internal/node"
	"rpcv/internal/proto"
)

// Directory maps node IDs to TCP addresses. In a real deployment this
// is the "finite list of known coordinators" downloaded from known
// repositories plus the addresses learned over time.
type Directory map[proto.NodeID]string

// Config parameterizes a runtime.
type Config struct {
	// ID is this node's stable identifier.
	ID proto.NodeID
	// ListenAddr is the TCP address to listen on (e.g. "127.0.0.1:0").
	// Empty means this node never receives (rarely useful).
	ListenAddr string
	// Directory maps peer IDs to addresses.
	Directory Directory
	// DiskDir is the directory backing the node's stable store. Empty
	// means an in-memory store (volatile across process restarts —
	// fine for tests, wrong for production).
	DiskDir string
	// Handler is the protocol state machine to host.
	Handler node.Handler
	// Seed for the node's RNG; 0 derives one from the ID.
	Seed int64
	// Logf, when non-nil, receives trace output (default: log.Printf).
	Logf func(format string, args ...any)
	// DialTimeout bounds connection attempts. Default 2 s.
	DialTimeout time.Duration
}

// envelope frames one message on the wire.
type envelope struct {
	From proto.NodeID
	Msg  proto.Message
}

// Runtime hosts one handler.
type Runtime struct {
	cfg  Config
	ln   net.Listener
	disk node.Disk
	rng  *rand.Rand

	mu     sync.Mutex
	dir    Directory
	closed bool

	mailbox chan func()
	quit    chan struct{}
	wg      sync.WaitGroup
}

// Start creates the runtime, binds its listener and boots the handler.
func Start(cfg Config) (*Runtime, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("rt: empty node ID")
	}
	if cfg.Handler == nil {
		return nil, fmt.Errorf("rt: nil handler")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	seed := cfg.Seed
	if seed == 0 {
		for _, c := range cfg.ID {
			seed = seed*131 + int64(c)
		}
		seed ^= time.Now().UnixNano()
	}

	r := &Runtime{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(seed)),
		dir:     make(Directory, len(cfg.Directory)),
		mailbox: make(chan func(), 1024),
		quit:    make(chan struct{}),
	}
	for id, addr := range cfg.Directory {
		r.dir[id] = addr
	}

	if cfg.DiskDir != "" {
		d, err := newFileDisk(cfg.DiskDir)
		if err != nil {
			return nil, fmt.Errorf("rt: disk: %w", err)
		}
		r.disk = d
	} else {
		r.disk = newMemDisk()
	}

	if cfg.ListenAddr != "" {
		ln, err := net.Listen("tcp", cfg.ListenAddr)
		if err != nil {
			return nil, fmt.Errorf("rt: listen: %w", err)
		}
		r.ln = ln
		r.wg.Add(1)
		go r.acceptLoop()
	}

	r.wg.Add(1)
	go r.eventLoop()

	env := &rtEnv{rt: r}
	r.Do(func() { cfg.Handler.Start(env) })
	return r, nil
}

// Addr returns the bound listen address ("" when not listening).
func (r *Runtime) Addr() string {
	if r.ln == nil {
		return ""
	}
	return r.ln.Addr().String()
}

// ID returns the hosted node's identifier.
func (r *Runtime) ID() proto.NodeID { return r.cfg.ID }

// SetPeer updates the directory entry for a peer (e.g. after a
// coordinator-list merge carried addresses out of band).
func (r *Runtime) SetPeer(id proto.NodeID, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dir[id] = addr
}

// Do runs fn on the handler's event loop and returns once it executed.
// It is how application code (the GridRPC facade) calls into the hosted
// handler safely.
func (r *Runtime) Do(fn func()) {
	done := make(chan struct{})
	select {
	case r.mailbox <- func() { fn(); close(done) }:
		<-done
	case <-r.quit:
	}
}

// DoAsync schedules fn on the event loop without waiting.
func (r *Runtime) DoAsync(fn func()) {
	select {
	case r.mailbox <- fn:
	case <-r.quit:
	}
}

// Close stops the handler and releases the listener. It does not
// remove the disk directory: stable storage survives, as a crash-stop
// would leave it.
func (r *Runtime) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()

	r.Do(func() { r.cfg.Handler.Stop() })
	close(r.quit)
	if r.ln != nil {
		r.ln.Close()
	}
	r.wg.Wait()
}

func (r *Runtime) eventLoop() {
	defer r.wg.Done()
	for {
		select {
		case fn := <-r.mailbox:
			fn()
		case <-r.quit:
			// Drain what is already queued, then stop.
			for {
				select {
				case fn := <-r.mailbox:
					fn()
				default:
					return
				}
			}
		}
	}
}

func (r *Runtime) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			select {
			case <-r.quit:
				return
			default:
			}
			r.cfg.Logf("rt(%s): accept: %v", r.cfg.ID, err)
			continue
		}
		go r.handleConn(conn)
	}
}

func (r *Runtime) handleConn(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(time.Minute))
	var env envelope
	if err := gob.NewDecoder(conn).Decode(&env); err != nil {
		r.cfg.Logf("rt(%s): decode: %v", r.cfg.ID, err)
		return
	}
	if env.Msg == nil {
		return
	}
	r.DoAsync(func() { r.cfg.Handler.Receive(env.From, env.Msg) })
}

// send dials the peer, writes one envelope and closes. Failures are
// silent (best-effort network): the protocol's heartbeats and resends
// own all recovery.
func (r *Runtime) send(to proto.NodeID, msg proto.Message) {
	r.mu.Lock()
	addr, ok := r.dir[to]
	r.mu.Unlock()
	if !ok {
		r.cfg.Logf("rt(%s): no address for %s, dropping %s", r.cfg.ID, to, msg.Kind())
		return
	}
	go func() {
		conn, err := net.DialTimeout("tcp", addr, r.cfg.DialTimeout)
		if err != nil {
			return // unreachable peers are a normal event
		}
		defer conn.Close()
		_ = conn.SetWriteDeadline(time.Now().Add(time.Minute))
		env := envelope{From: r.cfg.ID, Msg: msg}
		if err := gob.NewEncoder(conn).Encode(&env); err != nil {
			r.cfg.Logf("rt(%s): send %s to %s: %v", r.cfg.ID, msg.Kind(), to, err)
		}
	}()
}

// ---------------------------------------------------------------------
// Env implementation
// ---------------------------------------------------------------------

type rtEnv struct{ rt *Runtime }

var _ node.Env = (*rtEnv)(nil)

func (e *rtEnv) Self() proto.NodeID { return e.rt.cfg.ID }
func (e *rtEnv) Now() time.Time     { return time.Now() }
func (e *rtEnv) Rand() *rand.Rand   { return e.rt.rng }
func (e *rtEnv) Disk() node.Disk    { return e.rt.disk }

func (e *rtEnv) Logf(format string, args ...any) {
	e.rt.cfg.Logf("%s: %s", e.rt.cfg.ID, fmt.Sprintf(format, args...))
}

func (e *rtEnv) Send(to proto.NodeID, msg proto.Message) { e.rt.send(to, msg) }

func (e *rtEnv) After(d time.Duration, fn func()) node.Timer {
	t := &rtTimer{}
	t.timer = time.AfterFunc(d, func() {
		e.rt.DoAsync(func() {
			t.mu.Lock()
			stopped := t.stopped
			t.mu.Unlock()
			if !stopped {
				fn()
			}
		})
	})
	return t
}

type rtTimer struct {
	mu      sync.Mutex
	stopped bool
	timer   *time.Timer
}

func (t *rtTimer) Stop() {
	t.mu.Lock()
	t.stopped = true
	t.mu.Unlock()
	t.timer.Stop()
}

// ---------------------------------------------------------------------
// Disks
// ---------------------------------------------------------------------

// memDisk is a volatile in-memory store (tests, throwaway clients).
type memDisk struct {
	mu   sync.Mutex
	data map[string][]byte
}

func newMemDisk() *memDisk { return &memDisk{data: make(map[string][]byte)} }

func (d *memDisk) Write(key string, value []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.data[key] = append([]byte(nil), value...)
	return nil
}

func (d *memDisk) Read(key string) ([]byte, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	v, ok := d.data[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

func (d *memDisk) Delete(key string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.data, key)
}

func (d *memDisk) Keys(prefix string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var keys []string
	for k := range d.data {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// fileDisk maps each key to one file whose name is the hex encoding of
// the key (keys contain '/' and other filesystem-hostile characters).
// Writes are synced: the store is the message log, and pessimistic
// logging is only pessimistic if the bytes actually hit the platter.
type fileDisk struct {
	dir string
	mu  sync.Mutex
}

func newFileDisk(dir string) (*fileDisk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &fileDisk{dir: dir}, nil
}

func (d *fileDisk) path(key string) string {
	return filepath.Join(d.dir, hex.EncodeToString([]byte(key))+".log")
}

func (d *fileDisk) Write(key string, value []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	tmp := d.path(key) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(value); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, d.path(key))
}

func (d *fileDisk) Read(key string) ([]byte, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		return nil, false
	}
	return data, true
}

func (d *fileDisk) Delete(key string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	_ = os.Remove(d.path(key))
}

func (d *fileDisk) Keys(prefix string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".log") {
			continue
		}
		raw, err := hex.DecodeString(strings.TrimSuffix(name, ".log"))
		if err != nil {
			continue
		}
		key := string(raw)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys
}
