// Package rt is the real-time runtime: it hosts the same protocol
// handlers that run in the simulator (client, coordinator, server) on a
// real machine, with TCP sockets, the wall clock and a pluggable
// durable store (internal/store; Config.Store selects the engine —
// the legacy per-key "files" layout by default, or the group-commit
// "wal" log). The cmd/ daemons and the quickstart example are built on
// it.
//
// The default transport pools connections (see transport.go): each
// peer gets one long-lived connection owned by a sender goroutine with
// a bounded send queue, and queued envelopes are coalesced into a
// single flush. Semantically it is still the paper's best-effort,
// connection-less channel: sends never block, overflow and broken
// connections silently drop messages, and connection breaks are never
// used as fault signals — only heartbeat timeouts are. A quiet peer's
// connection closes after Config.IdleTimeout, returning it to the
// paper's "open, write one message, close" behaviour, which
// Config.LegacyTransport restores entirely. Connections speak the
// hand-written binary codec by default — a two-byte magic/version
// preface, then length-prefixed frames — and Config.Wire ("gob")
// reverts to the legacy gob envelope stream. All combinations
// interoperate: the read side auto-detects the codec from the first
// byte, decodes until EOF, and a single-envelope (or single-frame)
// stream is simply the shortest case.
//
// Each runtime runs its handler on a single event loop goroutine, so
// handlers keep the no-locking discipline they have under the
// simulator.
package rt

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rpcv/internal/node"
	"rpcv/internal/obs"
	"rpcv/internal/proto"
	"rpcv/internal/store"
)

// Directory maps node IDs to TCP addresses. In a real deployment this
// is the "finite list of known coordinators" downloaded from known
// repositories plus the addresses learned over time.
type Directory map[proto.NodeID]string

// Config parameterizes a runtime.
type Config struct {
	// ID is this node's stable identifier.
	ID proto.NodeID
	// ListenAddr is the TCP address to listen on (e.g. "127.0.0.1:0").
	// Empty means this node never receives (rarely useful).
	ListenAddr string
	// Directory maps peer IDs to addresses.
	Directory Directory
	// DiskDir is the directory backing the node's stable store. Empty
	// means an in-memory store (volatile across process restarts —
	// fine for tests, wrong for production).
	DiskDir string
	// Store selects the durable-store engine backing DiskDir: one of
	// store.Engines() — "files" (legacy per-key file layout, the
	// default), "wal" (group-commit write-ahead log with snapshots
	// and compaction) or "memory". Ignored when DiskDir is empty.
	Store string
	// Handler is the protocol state machine to host.
	Handler node.Handler
	// Seed for the node's RNG; 0 derives one from the ID.
	Seed int64
	// Logf, when non-nil, receives trace output (default: log.Printf).
	Logf func(format string, args ...any)
	// DialTimeout bounds connection attempts. Default 2 s.
	DialTimeout time.Duration
	// LegacyTransport reverts to the paper's literal connection-per-
	// message behaviour: every send dials, writes one envelope and
	// closes. The escape hatch for mixed deployments whose pre-pooling
	// binaries stop reading after the first envelope of a connection.
	LegacyTransport bool
	// Wire selects the codec this node's outgoing connections speak:
	// proto.WireBinary (default; length-prefixed hand-written frames
	// behind a magic version preface) or proto.WireGob (the legacy gob
	// envelope stream — what pre-binary builds both speak and expect).
	// Inbound connections auto-detect either codec from the first
	// byte, so a mixed cluster interoperates; set gob only when this
	// node must talk TO peers that predate the binary codec.
	Wire string
	// QueueDepth bounds each peer's send queue on the pooled
	// transport. When full, the oldest queued envelope is dropped —
	// best-effort semantics, indistinguishable from network loss.
	// Default 128.
	QueueDepth int
	// IdleTimeout closes a pooled connection with no outbound traffic
	// and retires its sender goroutine; the next send re-establishes
	// both. The read side grants inbound connections its own
	// IdleTimeout plus 30 s of quiet, so keep the knob consistent
	// across a deployment: a receiver with a shorter IdleTimeout than
	// its senders cuts their pooled connections first, and the first
	// flush after each quiet gap may be lost (recovered, as any loss,
	// by heartbeats and resends). Default 30 s.
	IdleTimeout time.Duration
	// Obs, when non-nil, receives runtime metrics: the transport
	// counters and batch sizes, the store's write-to-durable latency,
	// and (on the wal engine) the group-commit and snapshot counters,
	// all labeled node="<ID>". Counters the hot path already maintains
	// are exposed as scrape-time funcs, so observability costs nothing
	// per message; the write-latency histogram adds a few atomic adds
	// per durable write. Nil disables everything.
	Obs *obs.Observer
	// MaxInboundConns caps concurrent inbound connections; beyond it,
	// new connections are shed (accepted, immediately closed, counted
	// in TransportStats.Sheds) so a slow or malicious peer cannot
	// exhaust file descriptors. Size it above the steady peer
	// population: a shed connection loses whatever it carried, and if
	// active peers outnumber the cap for long, lost heartbeats turn
	// into false fault suspicions. Default 256.
	MaxInboundConns int
}

// envelope frames one message on the wire.
type envelope struct {
	From proto.NodeID
	Msg  proto.Message
}

// Runtime hosts one handler.
type Runtime struct {
	cfg   Config
	ln    net.Listener
	store store.Store
	disk  node.Disk
	rng   *rand.Rand

	mu     sync.Mutex
	dir    Directory
	conns  map[net.Conn]struct{}
	closed bool

	sendMu  sync.Mutex
	senders map[proto.NodeID]*sender

	inbound atomic.Int64
	stats   transportCounters

	// obsBatch and obsWrite are nil-safe obs instruments (nil when
	// Config.Obs is): flushed-batch sizes and write-to-durable latency.
	obsBatch *obs.Histogram
	obsWrite *obs.Histogram

	mailbox chan func()
	quit    chan struct{}
	wg      sync.WaitGroup
}

// Start creates the runtime, binds its listener and boots the handler.
func Start(cfg Config) (*Runtime, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("rt: empty node ID")
	}
	if cfg.Handler == nil {
		return nil, fmt.Errorf("rt: nil handler")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = defaultIdleTimeout
	}
	if cfg.MaxInboundConns <= 0 {
		cfg.MaxInboundConns = defaultMaxInboundConns
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	wire, err := proto.ParseWire(cfg.Wire)
	if err != nil {
		return nil, fmt.Errorf("rt: %w", err)
	}
	cfg.Wire = wire
	seed := cfg.Seed
	if seed == 0 {
		for _, c := range cfg.ID {
			seed = seed*131 + int64(c)
		}
		seed ^= time.Now().UnixNano()
	}

	r := &Runtime{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(seed)),
		dir:     make(Directory, len(cfg.Directory)),
		conns:   make(map[net.Conn]struct{}),
		senders: make(map[proto.NodeID]*sender),
		mailbox: make(chan func(), 1024),
		quit:    make(chan struct{}),
	}
	for id, addr := range cfg.Directory {
		r.dir[id] = addr
	}

	if cfg.DiskDir != "" {
		st, err := store.Open(cfg.Store, cfg.DiskDir)
		if err != nil {
			return nil, fmt.Errorf("rt: disk: %w", err)
		}
		r.store = st
	} else {
		r.store = store.NewMemory()
	}
	r.disk = &loopDisk{rt: r}
	r.registerObs()

	if cfg.ListenAddr != "" {
		ln, err := net.Listen("tcp", cfg.ListenAddr)
		if err != nil {
			// Release the store: a leaked wal keeps its committer
			// goroutine and segment fd alive, and a retry would open a
			// second committer over the same directory.
			_ = r.store.Close()
			return nil, fmt.Errorf("rt: listen: %w", err)
		}
		r.ln = ln
		r.wg.Add(1)
		go r.acceptLoop()
	}

	r.wg.Add(1)
	go r.eventLoop()

	env := &rtEnv{rt: r}
	r.Do(func() { cfg.Handler.Start(env) })
	return r, nil
}

// registerObs publishes the runtime's signals into Config.Obs. The
// transport and WAL counters are already atomics (or mutex-guarded
// snapshots) the hot path maintains regardless, so they register as
// scrape-time funcs: zero added cost per message.
func (r *Runtime) registerObs() {
	reg := r.cfg.Obs.Registry()
	if reg == nil {
		return
	}
	nl := obs.L("node", string(r.cfg.ID))
	reg.CounterFunc("rpcv_transport_sent_total", r.stats.sent.Load, nl)
	reg.CounterFunc("rpcv_transport_flushes_total", r.stats.flushes.Load, nl)
	reg.CounterFunc("rpcv_transport_dropped_total", r.stats.dropped.Load, nl)
	reg.CounterFunc("rpcv_transport_redials_total", r.stats.redials.Load, nl)
	reg.CounterFunc("rpcv_transport_sheds_total", r.stats.sheds.Load, nl)
	reg.GaugeFunc("rpcv_transport_inbound_conns", func() float64 { return float64(r.inbound.Load()) }, nl)
	r.obsBatch = reg.Histogram("rpcv_transport_batch_msgs", nl)
	r.obsWrite = reg.Histogram("rpcv_store_write_latency_ns", nl)
	if w, ok := r.store.(interface{ Stats() store.WALStats }); ok {
		reg.CounterFunc("rpcv_store_wal_commits_total", func() uint64 { return w.Stats().Commits }, nl)
		reg.CounterFunc("rpcv_store_wal_committed_ops_total", func() uint64 { return w.Stats().CommittedOps }, nl)
		reg.CounterFunc("rpcv_store_wal_snapshots_total", func() uint64 { return w.Stats().Snapshots }, nl)
		reg.GaugeFunc("rpcv_store_wal_segments", func() float64 { return float64(w.Stats().Segments) }, nl)
		reg.GaugeFunc("rpcv_store_wal_replayed_records", func() float64 { return float64(w.Stats().ReplayedRecords) }, nl)
	}
}

// Addr returns the bound listen address ("" when not listening).
func (r *Runtime) Addr() string {
	if r.ln == nil {
		return ""
	}
	return r.ln.Addr().String()
}

// ID returns the hosted node's identifier.
func (r *Runtime) ID() proto.NodeID { return r.cfg.ID }

// SetPeer updates the directory entry for a peer (e.g. after a
// coordinator-list merge carried addresses out of band).
func (r *Runtime) SetPeer(id proto.NodeID, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dir[id] = addr
}

// Do runs fn on the handler's event loop and returns once it executed.
// It is how application code (the GridRPC facade) calls into the hosted
// handler safely.
func (r *Runtime) Do(fn func()) {
	done := make(chan struct{})
	select {
	case r.mailbox <- func() { fn(); close(done) }:
		<-done
	case <-r.quit:
	}
}

// Ping proves the event loop is live: it schedules a no-op and waits
// at most d for the loop to run it. A nil return means the loop both
// accepted and executed work within the budget; the error otherwise
// says which half stalled. It is the liveness probe behind the
// daemons' /healthz — safe to call from any goroutine, including
// after Close (which reports the runtime as stopped).
func (r *Runtime) Ping(d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	done := make(chan struct{})
	select {
	case r.mailbox <- func() { close(done) }:
	case <-timer.C:
		return fmt.Errorf("event loop did not accept work within %v (mailbox full)", d)
	case <-r.quit:
		return fmt.Errorf("runtime stopped")
	}
	select {
	case <-done:
		return nil
	case <-timer.C:
		return fmt.Errorf("event loop did not respond within %v", d)
	case <-r.quit:
		return fmt.Errorf("runtime stopped")
	}
}

// DoAsync schedules fn on the event loop without waiting.
func (r *Runtime) DoAsync(fn func()) {
	select {
	case r.mailbox <- fn:
	case <-r.quit:
	}
}

// Close stops the handler and releases the listener. It does not
// remove the disk directory: stable storage survives, as a crash-stop
// would leave it.
func (r *Runtime) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()

	r.Do(func() { r.cfg.Handler.Stop() })
	close(r.quit)
	if r.ln != nil {
		r.ln.Close()
	}
	// Closing live connections interrupts blocked reads and writes so
	// no goroutine lingers until a network deadline expires.
	r.mu.Lock()
	conns := make([]net.Conn, 0, len(r.conns))
	for c := range r.conns {
		conns = append(conns, c)
	}
	r.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	r.wg.Wait()
	// Flush and release the store last: in-flight group commits drain,
	// so everything a handler was promised durable actually is.
	if err := r.store.Close(); err != nil {
		r.cfg.Logf("rt(%s): store close: %v", r.cfg.ID, err)
	}
}

// track registers a live connection so Close can interrupt its blocked
// reads and writes; it refuses (and closes) connections arriving
// during shutdown.
func (r *Runtime) track(conn net.Conn) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		conn.Close()
		return false
	}
	r.conns[conn] = struct{}{}
	return true
}

func (r *Runtime) untrack(conn net.Conn) {
	r.mu.Lock()
	delete(r.conns, conn)
	r.mu.Unlock()
}

func (r *Runtime) eventLoop() {
	defer r.wg.Done()
	for {
		select {
		case fn := <-r.mailbox:
			fn()
		case <-r.quit:
			// Drain what is already queued, then stop.
			for {
				select {
				case fn := <-r.mailbox:
					fn()
				default:
					return
				}
			}
		}
	}
}

func (r *Runtime) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			select {
			case <-r.quit:
				return
			default:
			}
			r.cfg.Logf("rt(%s): accept: %v", r.cfg.ID, err)
			continue
		}
		if n := r.inbound.Add(1); n > int64(r.cfg.MaxInboundConns) {
			// Accept-side shedding: beyond the cap a connection is
			// closed on the spot, costing the peer a reconnect instead
			// of costing this node a file descriptor for up to a read
			// deadline. The break itself is harmless (never a fault
			// signal), but a shed connection carried undelivered
			// messages — under sustained overload that includes
			// heartbeats, which IS how faults are suspected. The cap
			// must therefore exceed the steady peer population (see
			// Config.MaxInboundConns); the Sheds counter is the
			// operator's signal that it does not.
			r.inbound.Add(-1)
			r.stats.sheds.Add(1)
			conn.Close()
			continue
		}
		if !r.track(conn) {
			r.inbound.Add(-1)
			return
		}
		r.wg.Add(1)
		go r.handleConn(conn)
	}
}

// handleConn drains one inbound connection, auto-detecting the codec
// from its first byte: the binary magic preface opens a stream of
// length-prefixed frames; anything else is a gob stream of envelopes,
// decoded until EOF (length-of-stream framing). The legacy connection-
// per-message transport produces the degenerate one-envelope (or
// one-frame) stream, so every transport/codec combination shares this
// read path — which is what lets a mixed cluster interoperate.
func (r *Runtime) handleConn(conn net.Conn) {
	defer r.wg.Done()
	defer r.inbound.Add(-1)
	defer r.untrack(conn)
	defer conn.Close()
	// The deadline outlives the sender's idle timeout so the sender,
	// not the receiver, decides when a quiet connection dies.
	deadline := func() {
		_ = conn.SetReadDeadline(time.Now().Add(r.cfg.IdleTimeout + 30*time.Second))
	}
	deadline()
	br := bufio.NewReader(conn)
	first, err := br.Peek(1)
	if err != nil {
		if err != io.EOF {
			r.cfg.Logf("rt(%s): read: %v", r.cfg.ID, err)
		}
		return
	}
	if proto.IsBinaryPreface(first[0]) {
		if err := proto.ReadPreface(br); err != nil {
			r.cfg.Logf("rt(%s): preface: %v", r.cfg.ID, err)
			return
		}
		dec := proto.NewWireDecoder(br)
		for {
			deadline()
			from, msg, err := dec.Next()
			if err != nil {
				if err != io.EOF {
					r.cfg.Logf("rt(%s): decode frame: %v", r.cfg.ID, err)
				}
				return
			}
			r.DoAsync(func() { r.cfg.Handler.Receive(from, msg) })
		}
	}
	dec := gob.NewDecoder(br)
	for {
		deadline()
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if err != io.EOF {
				r.cfg.Logf("rt(%s): decode: %v", r.cfg.ID, err)
			}
			return
		}
		if env.Msg == nil {
			continue
		}
		r.DoAsync(func() { r.cfg.Handler.Receive(env.From, env.Msg) })
	}
}

// lookup resolves a peer's current address.
func (r *Runtime) lookup(to proto.NodeID) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	addr, ok := r.dir[to]
	return addr, ok
}

// send hands msg to the peer's transport. On the pooled transport
// (default) it enqueues on the peer's sender: never blocking, dropping
// the oldest queued envelope on overflow. With LegacyTransport it
// keeps the paper's literal behaviour: one goroutine dials, writes one
// envelope and closes. Failures are silent either way (best-effort
// network): the protocol's heartbeats and resends own all recovery.
func (r *Runtime) send(to proto.NodeID, msg proto.Message) {
	if _, ok := r.lookup(to); !ok {
		r.cfg.Logf("rt(%s): no address for %s, dropping %s", r.cfg.ID, to, msg.Kind())
		return
	}
	if r.cfg.LegacyTransport {
		// wg-tracked so Close waits even for these; worst case is one
		// DialTimeout for an in-flight dial to an unreachable peer.
		r.wg.Add(1)
		go r.sendLegacy(to, msg)
		return
	}
	r.senderFor(to).enqueue(msg)
}

// sendLegacy performs one paper-style connection-per-message send:
// dial, write one envelope (or preface + one frame on the binary
// codec), close.
func (r *Runtime) sendLegacy(to proto.NodeID, msg proto.Message) {
	defer r.wg.Done()
	addr, ok := r.lookup(to)
	if !ok {
		return
	}
	conn, err := net.DialTimeout("tcp", addr, r.cfg.DialTimeout)
	if err != nil {
		r.stats.dropped.Add(1)
		return // unreachable peers are a normal event
	}
	defer conn.Close()
	if !r.track(conn) {
		return
	}
	defer r.untrack(conn)
	_ = conn.SetWriteDeadline(time.Now().Add(time.Minute))
	if r.cfg.Wire == proto.WireBinary {
		buf := proto.GetBuffer()
		buf.B = append(buf.B, proto.FramePreface[:]...)
		if buf.B, err = proto.AppendFrame(buf.B, r.cfg.ID, msg); err == nil {
			_, err = conn.Write(buf.B)
		}
		proto.PutBuffer(buf)
	} else {
		env := envelope{From: r.cfg.ID, Msg: msg}
		err = gob.NewEncoder(conn).Encode(&env)
	}
	if err != nil {
		r.stats.dropped.Add(1)
		r.cfg.Logf("rt(%s): send %s to %s: %v", r.cfg.ID, msg.Kind(), to, err)
		return
	}
	r.stats.sent.Add(1)
	r.stats.flushes.Add(1)
}

// ---------------------------------------------------------------------
// Env implementation
// ---------------------------------------------------------------------

type rtEnv struct{ rt *Runtime }

var _ node.Env = (*rtEnv)(nil)

func (e *rtEnv) Self() proto.NodeID { return e.rt.cfg.ID }
func (e *rtEnv) Now() time.Time     { return time.Now() }
func (e *rtEnv) Rand() *rand.Rand   { return e.rt.rng }
func (e *rtEnv) Disk() node.Disk    { return e.rt.disk }

func (e *rtEnv) Logf(format string, args ...any) {
	e.rt.cfg.Logf("%s: %s", e.rt.cfg.ID, fmt.Sprintf(format, args...))
}

// Send hands msg to the transport without ever blocking the loop: the
// pooled transport enqueues (dropping oldest on overflow) and the
// legacy transport dials on its own goroutine.
//
//rpcv:loop-only
func (e *rtEnv) Send(to proto.NodeID, msg proto.Message) { e.rt.send(to, msg) }

// After registers a loop timer: fn fires on the event loop via
// DoAsync, and a Stop that loses the race is honoured by the stopped
// check inside the marshalled closure.
//
//rpcv:loop-only
func (e *rtEnv) After(d time.Duration, fn func()) node.Timer {
	t := &rtTimer{}
	t.timer = time.AfterFunc(d, func() {
		e.rt.DoAsync(func() {
			t.mu.Lock()
			stopped := t.stopped
			t.mu.Unlock()
			if !stopped {
				fn()
			}
		})
	})
	return t
}

type rtTimer struct {
	mu      sync.Mutex
	stopped bool
	timer   *time.Timer
}

func (t *rtTimer) Stop() {
	t.mu.Lock()
	t.stopped = true
	t.mu.Unlock()
	t.timer.Stop()
}

// ---------------------------------------------------------------------
// Stable storage
// ---------------------------------------------------------------------

// loopDisk adapts the runtime's durable store (internal/store) to the
// node.BatchDisk contract: synchronous operations pass through, and
// WriteAsync completion callbacks — which a group-commit engine runs
// on its committer goroutine — are marshalled back onto the node's
// event loop, preserving the handlers' no-locking discipline.
type loopDisk struct{ rt *Runtime }

var _ node.BatchDisk = (*loopDisk)(nil)

func (d *loopDisk) Write(key string, value []byte) error {
	if h := d.rt.obsWrite; h != nil {
		start := time.Now()
		err := d.rt.store.Write(key, value)
		h.Since(start)
		return err
	}
	return d.rt.store.Write(key, value)
}

func (d *loopDisk) Read(key string) ([]byte, bool) { return d.rt.store.Read(key) }
func (d *loopDisk) Delete(key string) error        { return d.rt.store.Delete(key) }
func (d *loopDisk) Keys(prefix string) []string    { return d.rt.store.Keys(prefix) }
func (d *loopDisk) Sync() error                    { return d.rt.store.Sync() }

func (d *loopDisk) WriteAsync(key string, value []byte, done func(error)) {
	if done == nil {
		d.rt.store.WriteAsync(key, value, nil)
		return
	}
	// Engines without real batching (files, memory) complete the write
	// synchronously, invoking the callback on this goroutine — the
	// node's event loop. Routing that through DoAsync would have the
	// loop send to its own mailbox, a self-deadlock once the mailbox
	// is full. Detect completion-before-return and invoke done inline
	// (still on the event loop); only callbacks arriving later — from
	// a committer goroutine — are marshalled through the mailbox.
	if h := d.rt.obsWrite; h != nil {
		// Completion time includes group-commit queueing: the latency a
		// handler actually waits for durability, which is the number
		// the fsync-amortization story must be judged by.
		start := time.Now()
		inner := done
		done = func(err error) {
			h.Since(start)
			inner(err)
		}
	}
	st := &asyncWriteState{}
	d.rt.store.WriteAsync(key, value, func(err error) {
		st.mu.Lock()
		if !st.returned {
			st.fired, st.err = true, err
			st.mu.Unlock()
			return
		}
		st.mu.Unlock()
		// A callback arriving during shutdown is dropped with the
		// mailbox — indistinguishable from the crash it models.
		d.rt.DoAsync(func() { done(err) })
	})
	st.mu.Lock()
	st.returned = true
	fired, err := st.fired, st.err
	st.mu.Unlock()
	if fired {
		done(err)
	}
}

// asyncWriteState tracks whether a store completed a staged write
// before WriteAsync returned to the event loop.
type asyncWriteState struct {
	mu       sync.Mutex
	returned bool
	fired    bool
	err      error
}
