// Package rt is the real-time runtime: it hosts the same protocol
// handlers that run in the simulator (client, coordinator, server) on a
// real machine, with TCP sockets, the wall clock and a pluggable
// durable store (internal/store; Config.Store selects the engine —
// the legacy per-key "files" layout by default, or the group-commit
// "wal" log). The cmd/ daemons and the quickstart example are built on
// it.
//
// The default transport pools connections (see transport.go): each
// peer gets one long-lived connection owned by a sender goroutine with
// a bounded send queue, and queued envelopes are coalesced into a
// single flush. Semantically it is still the paper's best-effort,
// connection-less channel: sends never block, overflow and broken
// connections silently drop messages, and connection breaks are never
// used as fault signals — only heartbeat timeouts are. A quiet peer's
// connection closes after Config.IdleTimeout, returning it to the
// paper's "open, write one message, close" behaviour, which
// Config.LegacyTransport restores entirely. Connections speak the
// hand-written binary codec by default — a two-byte magic/version
// preface, then length-prefixed frames — and Config.Wire ("gob")
// reverts to the legacy gob envelope stream. All combinations
// interoperate: the read side auto-detects the codec from the first
// byte, decodes until EOF, and a single-envelope (or single-frame)
// stream is simply the shortest case.
//
// A runtime runs its handler on Config.Loops per-core event loops
// (default 1). Handlers implementing node.PartitionedHandler are split
// into one partition per loop; sessions are hash-pinned to loops with
// the shard layer's consistent hashing (shard.LoopMap), so every
// handler keeps the no-locking discipline it has under the simulator —
// per loop. See loop.go and route.go. Loops=1 reproduces the
// single-loop runtime exactly, including its wire bytes.
package rt

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rpcv/internal/node"
	"rpcv/internal/obs"
	"rpcv/internal/proto"
	"rpcv/internal/shard"
	"rpcv/internal/store"
)

// Directory maps node IDs to TCP addresses. In a real deployment this
// is the "finite list of known coordinators" downloaded from known
// repositories plus the addresses learned over time.
type Directory map[proto.NodeID]string

// Config parameterizes a runtime.
type Config struct {
	// ID is this node's stable identifier.
	ID proto.NodeID
	// ListenAddr is the TCP address to listen on (e.g. "127.0.0.1:0").
	// Empty means this node never receives (rarely useful).
	ListenAddr string
	// Directory maps peer IDs to addresses.
	Directory Directory
	// DiskDir is the directory backing the node's stable store. Empty
	// means an in-memory store (volatile across process restarts —
	// fine for tests, wrong for production).
	DiskDir string
	// Store selects the durable-store engine backing DiskDir: one of
	// store.Engines() — "files" (legacy per-key file layout, the
	// default), "wal" (group-commit write-ahead log with snapshots
	// and compaction) or "memory". Ignored when DiskDir is empty.
	Store string
	// Handler is the protocol state machine to host.
	Handler node.Handler
	// Loops is the number of per-core event loops hosting the handler.
	// 0 or 1 means the classic single loop. Values above 1 require the
	// handler to implement node.PartitionedHandler — otherwise the
	// runtime clamps to 1 — and pin each session to one loop with the
	// shard layer's consistent hashing, so submit throughput scales
	// with cores while handlers stay lock-free per loop. Peers in one
	// coordinator ring should run the same value (loop-tagged traffic
	// routes partition j to partition j); a single-loop node is always
	// wire-compatible with any peer.
	Loops int
	// Seed for the node's RNG; 0 derives one from the ID. Each loop
	// derives its own stream from this seed.
	Seed int64
	// Logf, when non-nil, receives trace output (default: log.Printf).
	Logf func(format string, args ...any)
	// DialTimeout bounds connection attempts. Default 2 s.
	DialTimeout time.Duration
	// LegacyTransport reverts to the paper's literal connection-per-
	// message behaviour: every send dials, writes one envelope and
	// closes. The escape hatch for mixed deployments whose pre-pooling
	// binaries stop reading after the first envelope of a connection.
	LegacyTransport bool
	// Wire selects the codec this node's outgoing connections speak:
	// proto.WireBinary (default; length-prefixed hand-written frames
	// behind a magic version preface) or proto.WireGob (the legacy gob
	// envelope stream — what pre-binary builds both speak and expect).
	// Inbound connections auto-detect either codec from the first
	// byte, so a mixed cluster interoperates; set gob only when this
	// node must talk TO peers that predate the binary codec.
	Wire string
	// QueueDepth bounds each peer's send queue on the pooled
	// transport. When full, the oldest queued envelope is dropped —
	// best-effort semantics, indistinguishable from network loss.
	// Default 128.
	QueueDepth int
	// IdleTimeout closes a pooled connection with no outbound traffic
	// and retires its sender goroutine; the next send re-establishes
	// both. The read side grants inbound connections its own
	// IdleTimeout plus 30 s of quiet, so keep the knob consistent
	// across a deployment: a receiver with a shorter IdleTimeout than
	// its senders cuts their pooled connections first, and the first
	// flush after each quiet gap may be lost (recovered, as any loss,
	// by heartbeats and resends). Default 30 s.
	IdleTimeout time.Duration
	// Obs, when non-nil, receives runtime metrics: the transport
	// counters and batch sizes, the store's write-to-durable latency,
	// (on the wal engine) the group-commit and snapshot counters, all
	// labeled node="<ID>", and per-loop counters (tasks, handoffs,
	// mailbox depth, pending timers) labeled node + loop. Counters the
	// hot path already maintains are exposed as scrape-time funcs, so
	// observability costs nothing per message; the write-latency
	// histogram adds a few atomic adds per durable write. Nil disables
	// everything.
	Obs *obs.Observer
	// MaxInboundConns caps concurrent inbound connections; beyond it,
	// new connections are shed (accepted, immediately closed, counted
	// in TransportStats.Sheds) so a slow or malicious peer cannot
	// exhaust file descriptors. Size it above the steady peer
	// population: a shed connection loses whatever it carried, and if
	// active peers outnumber the cap for long, lost heartbeats turn
	// into false fault suspicions. Default 256.
	MaxInboundConns int
	// WrapStore, when non-nil, interposes on the store after the engine
	// opens it (so engine directory-refusal checks have already run)
	// and before any loop sees it. The chaos harness uses it to inject
	// disk faults (store.WithFaults); the wrapper must preserve the
	// Store contract. Note: a wrapper hides optional interfaces
	// (store.Laner, WALStats), so multi-loop store lanes degrade to
	// the shared path under a wrapped store.
	WrapStore func(store.Store) store.Store
}

// envelope frames one message on the wire.
type envelope struct {
	From proto.NodeID
	Msg  proto.Message
}

// Runtime hosts one handler across one or more event loops.
type Runtime struct {
	cfg   Config
	ln    net.Listener
	store store.Store

	loops   []*loop
	loopMap *shard.LoopMap
	fromIDs []proto.NodeID // wire From per loop (tagged when len(loops)>1)

	mu     sync.Mutex
	dir    Directory
	conns  map[net.Conn]struct{}
	closed bool

	sendMu  sync.Mutex
	senders map[proto.NodeID]*sender

	inbound  atomic.Int64
	stats    transportCounters
	clockOff atomic.Int64 // injected clock skew, ns (SetClockOffset)

	// obsBatch and obsWrite are nil-safe obs instruments (nil when
	// Config.Obs is): flushed-batch sizes and write-to-durable latency.
	obsBatch *obs.Histogram
	obsWrite *obs.Histogram

	quit chan struct{}
	wg   sync.WaitGroup
}

// Start creates the runtime, binds its listener and boots the handler.
func Start(cfg Config) (*Runtime, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("rt: empty node ID")
	}
	if cfg.Handler == nil {
		return nil, fmt.Errorf("rt: nil handler")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = defaultIdleTimeout
	}
	if cfg.MaxInboundConns <= 0 {
		cfg.MaxInboundConns = defaultMaxInboundConns
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	wire, err := proto.ParseWire(cfg.Wire)
	if err != nil {
		return nil, fmt.Errorf("rt: %w", err)
	}
	cfg.Wire = wire
	seed := cfg.Seed
	if seed == 0 {
		for _, c := range cfg.ID {
			seed = seed*131 + int64(c)
		}
		seed ^= time.Now().UnixNano()
	}

	// Resolve the loop count and partition the handler. A handler that
	// cannot partition is clamped to one loop: correctness first, the
	// flag is a capability request, not a promise.
	nloops := cfg.Loops
	if nloops < 1 {
		nloops = 1
	}
	var handlers []node.Handler
	if nloops > 1 {
		if ph, ok := cfg.Handler.(node.PartitionedHandler); ok {
			handlers = ph.Partition(nloops)
			if len(handlers) != nloops || handlers[0] == nil {
				return nil, fmt.Errorf("rt: handler partitioned into %d of %d loops", len(handlers), nloops)
			}
		} else {
			cfg.Logf("rt(%s): handler %T cannot partition; clamping %d loops to 1", cfg.ID, cfg.Handler, nloops)
			nloops = 1
		}
	}
	if nloops == 1 {
		handlers = []node.Handler{cfg.Handler}
	}

	r := &Runtime{
		cfg:     cfg,
		dir:     make(Directory, len(cfg.Directory)),
		conns:   make(map[net.Conn]struct{}),
		senders: make(map[proto.NodeID]*sender),
		loopMap: shard.NewLoopMap(nloops),
		quit:    make(chan struct{}),
	}
	for id, addr := range cfg.Directory {
		r.dir[id] = addr
	}

	// The wire From per loop: a single-loop runtime sends the bare ID
	// (byte-identical to the pre-multi-core wire); a multi-loop one
	// tags every frame with its originating loop so a multi-loop peer
	// can route loop-symmetric traffic j -> j.
	r.fromIDs = make([]proto.NodeID, nloops)
	for i := range r.fromIDs {
		if nloops == 1 {
			r.fromIDs[i] = cfg.ID
		} else {
			r.fromIDs[i] = cfg.ID + proto.NodeID(loopTagSep+strconv.Itoa(i))
		}
	}

	if cfg.DiskDir != "" {
		st, err := store.Open(cfg.Store, cfg.DiskDir)
		if err != nil {
			return nil, fmt.Errorf("rt: disk: %w", err)
		}
		r.store = st
	} else {
		r.store = store.NewMemory()
	}
	if cfg.WrapStore != nil {
		r.store = cfg.WrapStore(r.store)
	}

	// Build the loops: per-loop RNG stream, store lane (when the
	// engine supports per-loop staging; mutex-guarded engines are
	// shared directly), env and disk adapter.
	laner, _ := r.store.(store.Laner)
	r.loops = make([]*loop, nloops)
	for i := 0; i < nloops; i++ {
		l := &loop{
			idx:     i,
			r:       r,
			handler: handlers[i],
			mailbox: make(chan func(), 1024),
			wake:    make(chan struct{}, 1),
			rng:     rand.New(rand.NewSource(seed + int64(i)*0x9E3779B9)),
		}
		l.store = r.store
		if laner != nil && nloops > 1 {
			l.store = laner.Lane()
		}
		l.disk = &loopDisk{l: l}
		l.env = &rtEnv{l: l}
		r.loops[i] = l
	}
	r.registerObs()

	// Seed each mailbox with the handler's Start BEFORE any goroutine
	// that could deliver traffic exists: a peer connecting in the
	// window between the accept loop spawning and Start being posted
	// would otherwise have its message Received by an un-Started
	// handler. The mailboxes are empty and loops not yet running, so
	// the sends cannot block.
	for _, l := range r.loops {
		l := l
		l.mailbox <- func() { l.handler.Start(l.env) }
	}

	if cfg.ListenAddr != "" {
		ln, err := net.Listen("tcp", cfg.ListenAddr)
		if err != nil {
			// Release the store: a leaked wal keeps its committer
			// goroutine and segment fd alive, and a retry would open a
			// second committer over the same directory.
			_ = r.store.Close()
			return nil, fmt.Errorf("rt: listen: %w", err)
		}
		r.ln = ln
		r.wg.Add(1)
		go r.acceptLoop()
	}

	for _, l := range r.loops {
		r.wg.Add(1)
		go l.run()
	}
	return r, nil
}

// registerObs publishes the runtime's signals into Config.Obs. The
// transport and WAL counters are already atomics (or mutex-guarded
// snapshots) the hot path maintains regardless, so they register as
// scrape-time funcs: zero added cost per message.
func (r *Runtime) registerObs() {
	reg := r.cfg.Obs.Registry()
	if reg == nil {
		return
	}
	nl := obs.L("node", string(r.cfg.ID))
	reg.CounterFunc("rpcv_transport_sent_total", r.stats.sent.Load, nl)
	reg.CounterFunc("rpcv_transport_flushes_total", r.stats.flushes.Load, nl)
	reg.CounterFunc("rpcv_transport_dropped_total", r.stats.dropped.Load, nl)
	reg.CounterFunc("rpcv_transport_redials_total", r.stats.redials.Load, nl)
	reg.CounterFunc("rpcv_transport_sheds_total", r.stats.sheds.Load, nl)
	reg.GaugeFunc("rpcv_transport_inbound_conns", func() float64 { return float64(r.inbound.Load()) }, nl)
	r.obsBatch = reg.Histogram("rpcv_transport_batch_msgs", nl)
	r.obsWrite = reg.Histogram("rpcv_store_write_latency_ns", nl)
	for _, l := range r.loops {
		l := l
		ll := obs.L("loop", strconv.Itoa(l.idx))
		reg.CounterFunc("rpcv_loop_tasks_total", l.tasks.Load, nl, ll)
		reg.CounterFunc("rpcv_loop_handoffs_total", l.handoffs.Load, nl, ll)
		reg.GaugeFunc("rpcv_loop_mailbox_depth", func() float64 { return float64(len(l.mailbox)) }, nl, ll)
		reg.GaugeFunc("rpcv_loop_timers", func() float64 {
			l.tmu.Lock()
			defer l.tmu.Unlock()
			return float64(len(l.timers))
		}, nl, ll)
	}
	if w, ok := r.store.(interface{ Stats() store.WALStats }); ok {
		reg.CounterFunc("rpcv_store_wal_commits_total", func() uint64 { return w.Stats().Commits }, nl)
		reg.CounterFunc("rpcv_store_wal_committed_ops_total", func() uint64 { return w.Stats().CommittedOps }, nl)
		reg.CounterFunc("rpcv_store_wal_snapshots_total", func() uint64 { return w.Stats().Snapshots }, nl)
		reg.GaugeFunc("rpcv_store_wal_segments", func() float64 { return float64(w.Stats().Segments) }, nl)
		reg.GaugeFunc("rpcv_store_wal_replayed_records", func() float64 { return float64(w.Stats().ReplayedRecords) }, nl)
	}
}

// Addr returns the bound listen address ("" when not listening).
func (r *Runtime) Addr() string {
	if r.ln == nil {
		return ""
	}
	return r.ln.Addr().String()
}

// ID returns the hosted node's identifier.
func (r *Runtime) ID() proto.NodeID { return r.cfg.ID }

// Loops returns the number of event loops hosting the handler.
func (r *Runtime) Loops() int { return len(r.loops) }

// LoopFor returns the loop index owning a session under this runtime's
// placement — the same consistent hashing the delivery path uses, so
// callers (experiments, tests, statusz) can predict or balance
// placement.
func (r *Runtime) LoopFor(user proto.UserID, session proto.SessionID) int {
	return r.loopMap.Owner(user, session)
}

// SetPeer updates the directory entry for a peer (e.g. after a
// coordinator-list merge carried addresses out of band).
func (r *Runtime) SetPeer(id proto.NodeID, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dir[id] = addr
}

// Do runs fn on loop 0 and returns once it executed. It is how
// application code (the GridRPC facade) calls into the hosted handler
// safely. On a partitioned handler it reaches partition 0 only; use
// DoOn for a specific partition.
func (r *Runtime) Do(fn func()) { r.DoOn(0, fn) }

// DoOn runs fn on loop i's event loop and returns once it executed.
func (r *Runtime) DoOn(i int, fn func()) {
	l := r.loops[i]
	done := make(chan struct{})
	select {
	case l.mailbox <- func() { fn(); close(done) }:
		<-done
	case <-r.quit:
	}
}

// Ping proves loop 0 is live; see PingLoop.
func (r *Runtime) Ping(d time.Duration) error { return r.PingLoop(0, d) }

// PingLoop proves event loop i is live: it schedules a no-op and
// waits at most d for the loop to run it. A nil return means the loop
// both accepted and executed work within the budget; the error
// otherwise says which half stalled. It is the liveness probe behind
// the daemons' /healthz — safe to call from any goroutine, including
// after Close (which reports the runtime as stopped).
func (r *Runtime) PingLoop(i int, d time.Duration) error {
	l := r.loops[i]
	timer := time.NewTimer(d)
	defer timer.Stop()
	done := make(chan struct{})
	select {
	case l.mailbox <- func() { close(done) }:
	case <-timer.C:
		return fmt.Errorf("event loop %d did not accept work within %v (mailbox full)", i, d)
	case <-r.quit:
		return fmt.Errorf("runtime stopped")
	}
	select {
	case <-done:
		return nil
	case <-timer.C:
		return fmt.Errorf("event loop %d did not respond within %v", i, d)
	case <-r.quit:
		return fmt.Errorf("runtime stopped")
	}
}

// DoAsync schedules fn on loop 0 without waiting.
func (r *Runtime) DoAsync(fn func()) { r.DoAsyncOn(0, fn) }

// DoAsyncOn schedules fn on loop i without waiting.
func (r *Runtime) DoAsyncOn(i int, fn func()) {
	select {
	case r.loops[i].mailbox <- fn:
	case <-r.quit:
	}
}

// SetClockOffset skews this node's notion of "now": every env.Now()
// reading (heartbeat stamps, failure-detector lastSeen and sweeps)
// shifts by d, while wall-clock timers keep firing on real time — the
// clock-skew fault shape, where a node's clock jumps but its cadence
// does not. Safe from any goroutine; zero restores real time.
func (r *Runtime) SetClockOffset(d time.Duration) { r.clockOff.Store(int64(d)) }

// ClockOffset returns the current injected clock skew.
func (r *Runtime) ClockOffset() time.Duration { return time.Duration(r.clockOff.Load()) }

// StallLoop blocks event loop i for d: timers do not fire, messages
// queue in the mailbox, heartbeats lapse — but the process, its
// listener and its pooled connections stay up. This is the
// stalled-not-dead fault (GC pause, noisy neighbor, swap storm): peers
// must decide on heartbeat silence alone, with TCP still open. Returns
// without waiting for the stall to elapse.
func (r *Runtime) StallLoop(i int, d time.Duration) {
	r.DoAsyncOn(i, func() { stallLoopBody(d) })
}

// StallLoops stalls every event loop for d, freezing the whole node.
func (r *Runtime) StallLoops(d time.Duration) {
	for i := range r.loops {
		r.StallLoop(i, d)
	}
}

// stallLoopBody deliberately blocks the calling event loop — the one
// thing loop code must never do, injected on purpose by the chaos
// harness through StallLoop. The loop-safe annotation is the audited
// escape hatch: the blocking is the fault under test.
//
//rpcv:loop-safe
func stallLoopBody(d time.Duration) { time.Sleep(d) }

// LoopStat is a point-in-time snapshot of one event loop, for statusz.
type LoopStat struct {
	Loop         int    `json:"loop"`
	Tasks        uint64 `json:"tasks"`
	Handoffs     uint64 `json:"handoffs"`
	MailboxDepth int    `json:"mailbox_depth"`
	Timers       int    `json:"timers"`
}

// LoopStats snapshots every loop's counters. Safe from any goroutine.
func (r *Runtime) LoopStats() []LoopStat {
	out := make([]LoopStat, len(r.loops))
	for i, l := range r.loops {
		l.tmu.Lock()
		timers := len(l.timers)
		l.tmu.Unlock()
		out[i] = LoopStat{
			Loop:         i,
			Tasks:        l.tasks.Load(),
			Handoffs:     l.handoffs.Load(),
			MailboxDepth: len(l.mailbox),
			Timers:       timers,
		}
	}
	return out
}

// Close stops the handler and releases the listener. It does not
// remove the disk directory: stable storage survives, as a crash-stop
// would leave it.
func (r *Runtime) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()

	for _, l := range r.loops {
		l := l
		r.DoOn(l.idx, func() { l.handler.Stop() })
	}
	close(r.quit)
	if r.ln != nil {
		r.ln.Close()
	}
	// Closing live connections interrupts blocked reads and writes so
	// no goroutine lingers until a network deadline expires.
	r.mu.Lock()
	conns := make([]net.Conn, 0, len(r.conns))
	for c := range r.conns {
		conns = append(conns, c)
	}
	r.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	r.wg.Wait()
	// Flush and release the store last: in-flight group commits drain,
	// so everything a handler was promised durable actually is.
	if err := r.store.Close(); err != nil {
		r.cfg.Logf("rt(%s): store close: %v", r.cfg.ID, err)
	}
}

// track registers a live connection so Close can interrupt its blocked
// reads and writes; it refuses (and closes) connections arriving
// during shutdown.
func (r *Runtime) track(conn net.Conn) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		conn.Close()
		return false
	}
	r.conns[conn] = struct{}{}
	return true
}

func (r *Runtime) untrack(conn net.Conn) {
	r.mu.Lock()
	delete(r.conns, conn)
	r.mu.Unlock()
}

func (r *Runtime) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			select {
			case <-r.quit:
				return
			default:
			}
			r.cfg.Logf("rt(%s): accept: %v", r.cfg.ID, err)
			continue
		}
		if n := r.inbound.Add(1); n > int64(r.cfg.MaxInboundConns) {
			// Accept-side shedding: beyond the cap a connection is
			// closed on the spot, costing the peer a reconnect instead
			// of costing this node a file descriptor for up to a read
			// deadline. The break itself is harmless (never a fault
			// signal), but a shed connection carried undelivered
			// messages — under sustained overload that includes
			// heartbeats, which IS how faults are suspected. The cap
			// must therefore exceed the steady peer population (see
			// Config.MaxInboundConns); the Sheds counter is the
			// operator's signal that it does not.
			r.inbound.Add(-1)
			r.stats.sheds.Add(1)
			conn.Close()
			continue
		}
		if !r.track(conn) {
			r.inbound.Add(-1)
			return
		}
		r.wg.Add(1)
		go r.handleConn(conn)
	}
}

// handleConn drains one inbound connection, auto-detecting the codec
// from its first byte: the binary magic preface opens a stream of
// length-prefixed frames; anything else is a gob stream of envelopes,
// decoded until EOF (length-of-stream framing). The legacy connection-
// per-message transport produces the degenerate one-envelope (or
// one-frame) stream, so every transport/codec combination shares this
// read path — which is what lets a mixed cluster interoperate. Each
// message is routed to its owning loop by deliver (route.go).
func (r *Runtime) handleConn(conn net.Conn) {
	defer r.wg.Done()
	defer r.inbound.Add(-1)
	defer r.untrack(conn)
	defer conn.Close()
	// The deadline outlives the sender's idle timeout so the sender,
	// not the receiver, decides when a quiet connection dies.
	deadline := func() {
		_ = conn.SetReadDeadline(time.Now().Add(r.cfg.IdleTimeout + 30*time.Second))
	}
	deadline()
	br := bufio.NewReader(conn)
	first, err := br.Peek(1)
	if err != nil {
		if err != io.EOF {
			r.cfg.Logf("rt(%s): read: %v", r.cfg.ID, err)
		}
		return
	}
	if proto.IsBinaryPreface(first[0]) {
		if err := proto.ReadPreface(br); err != nil {
			r.cfg.Logf("rt(%s): preface: %v", r.cfg.ID, err)
			return
		}
		dec := proto.NewWireDecoder(br)
		for {
			deadline()
			from, msg, err := dec.Next()
			if err != nil {
				if err != io.EOF {
					r.cfg.Logf("rt(%s): decode frame: %v", r.cfg.ID, err)
				}
				return
			}
			r.deliver(from, msg)
		}
	}
	dec := gob.NewDecoder(br)
	for {
		deadline()
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if err != io.EOF {
				r.cfg.Logf("rt(%s): decode: %v", r.cfg.ID, err)
			}
			return
		}
		if env.Msg == nil {
			continue
		}
		r.deliver(env.From, env.Msg)
	}
}

// lookup resolves a peer's current address.
func (r *Runtime) lookup(to proto.NodeID) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	addr, ok := r.dir[to]
	return addr, ok
}

// send hands msg to the peer's transport, stamped with the originating
// loop's wire From. On the pooled transport (default) it enqueues on
// the peer's sender: never blocking, dropping the oldest queued
// envelope on overflow. With LegacyTransport it keeps the paper's
// literal behaviour: one goroutine dials, writes one envelope and
// closes. Failures are silent either way (best-effort network): the
// protocol's heartbeats and resends own all recovery.
func (r *Runtime) send(to proto.NodeID, msg proto.Message, loopIdx int) {
	if _, ok := r.lookup(to); !ok {
		r.cfg.Logf("rt(%s): no address for %s, dropping %s", r.cfg.ID, to, msg.Kind())
		return
	}
	from := r.taggedFrom(loopIdx)
	if r.cfg.LegacyTransport {
		// wg-tracked so Close waits even for these; worst case is one
		// DialTimeout for an in-flight dial to an unreachable peer.
		r.wg.Add(1)
		go r.sendLegacy(to, msg, from)
		return
	}
	r.senderFor(to).enqueue(outMsg{msg: msg, from: from})
}

// sendLegacy performs one paper-style connection-per-message send:
// dial, write one envelope (or preface + one frame on the binary
// codec), close.
func (r *Runtime) sendLegacy(to proto.NodeID, msg proto.Message, from proto.NodeID) {
	defer r.wg.Done()
	addr, ok := r.lookup(to)
	if !ok {
		return
	}
	conn, err := net.DialTimeout("tcp", addr, r.cfg.DialTimeout)
	if err != nil {
		r.stats.dropped.Add(1)
		return // unreachable peers are a normal event
	}
	defer conn.Close()
	if !r.track(conn) {
		return
	}
	defer r.untrack(conn)
	_ = conn.SetWriteDeadline(time.Now().Add(time.Minute))
	if r.cfg.Wire == proto.WireBinary {
		buf := proto.GetBuffer()
		buf.B = append(buf.B, proto.FramePreface[:]...)
		if buf.B, err = proto.AppendFrame(buf.B, from, msg); err == nil {
			_, err = conn.Write(buf.B)
		}
		proto.PutBuffer(buf)
	} else {
		env := envelope{From: from, Msg: msg}
		err = gob.NewEncoder(conn).Encode(&env)
	}
	if err != nil {
		r.stats.dropped.Add(1)
		r.cfg.Logf("rt(%s): send %s to %s: %v", r.cfg.ID, msg.Kind(), to, err)
		return
	}
	r.stats.sent.Add(1)
	r.stats.flushes.Add(1)
}

// ---------------------------------------------------------------------
// Env implementation
// ---------------------------------------------------------------------

type rtEnv struct{ l *loop }

var (
	_ node.Env      = (*rtEnv)(nil)
	_ node.LoopInfo = (*rtEnv)(nil)
)

func (e *rtEnv) Self() proto.NodeID { return e.l.r.cfg.ID }
func (e *rtEnv) Now() time.Time {
	if off := e.l.r.clockOff.Load(); off != 0 {
		return time.Now().Add(time.Duration(off))
	}
	return time.Now()
}
func (e *rtEnv) Disk() node.Disk { return e.l.disk }

// Rand returns the loop-private RNG: each loop seeds its own stream,
// so concurrent loops never share (and never race on) one rand.Rand.
func (e *rtEnv) Rand() *rand.Rand { return e.l.rng }

// Loop implements node.LoopInfo: the partition's placement.
func (e *rtEnv) Loop() (int, int) { return e.l.idx, len(e.l.r.loops) }

func (e *rtEnv) Logf(format string, args ...any) {
	e.l.r.cfg.Logf("%s: %s", e.l.r.cfg.ID, fmt.Sprintf(format, args...))
}

// Send hands msg to the transport without ever blocking the loop: the
// pooled transport enqueues (dropping oldest on overflow) and the
// legacy transport dials on its own goroutine. The frame carries this
// loop's From tag so a multi-loop peer routes it loop-symmetrically.
//
//rpcv:loop-only
func (e *rtEnv) Send(to proto.NodeID, msg proto.Message) { e.l.r.send(to, msg, e.l.idx) }

// After registers a timer on this loop's timer heap: fn fires on the
// owning loop when the deadline passes, and Stop removes it from the
// heap.
//
//rpcv:loop-only
func (e *rtEnv) After(d time.Duration, fn func()) node.Timer {
	return e.l.after(d, fn)
}

// ---------------------------------------------------------------------
// Stable storage
// ---------------------------------------------------------------------

// loopDisk adapts a loop's durable store (internal/store; a per-loop
// staging lane on engines that support one) to the node.BatchDisk
// contract: synchronous operations pass through, and WriteAsync
// completion callbacks — which a group-commit engine runs on its
// committer goroutine — are marshalled back onto the owning loop,
// preserving the handlers' no-locking discipline. Completions ride the
// loop's lock-free handoff ring, never its bounded mailbox: a
// committer blocked on a full mailbox would deadlock any loop waiting
// inside a synchronous Write of the same batch.
type loopDisk struct{ l *loop }

var _ node.BatchDisk = (*loopDisk)(nil)

func (d *loopDisk) Write(key string, value []byte) error {
	if h := d.l.r.obsWrite; h != nil {
		start := time.Now()
		err := d.l.store.Write(key, value)
		h.Since(start)
		return err
	}
	return d.l.store.Write(key, value)
}

func (d *loopDisk) Read(key string) ([]byte, bool) { return d.l.store.Read(key) }
func (d *loopDisk) Delete(key string) error        { return d.l.store.Delete(key) }
func (d *loopDisk) Keys(prefix string) []string    { return d.l.store.Keys(prefix) }
func (d *loopDisk) Sync() error                    { return d.l.store.Sync() }

func (d *loopDisk) WriteAsync(key string, value []byte, done func(error)) {
	if done == nil {
		d.l.store.WriteAsync(key, value, nil)
		return
	}
	// Engines without real batching (files, memory) complete the write
	// synchronously, invoking the callback on this goroutine — the
	// owning event loop. Routing that through the handoff ring would
	// defer it behind unrelated work; detect completion-before-return
	// and invoke done inline (still on the owning loop). Only
	// callbacks arriving later — from a committer goroutine — are
	// marshalled back through the loop's handoff ring.
	if h := d.l.r.obsWrite; h != nil {
		// Completion time includes group-commit queueing: the latency a
		// handler actually waits for durability, which is the number
		// the fsync-amortization story must be judged by.
		start := time.Now()
		inner := done
		done = func(err error) {
			h.Since(start)
			inner(err)
		}
	}
	st := &asyncWriteState{}
	d.l.store.WriteAsync(key, value, func(err error) {
		st.mu.Lock()
		if !st.returned {
			st.fired, st.err = true, err
			st.mu.Unlock()
			return
		}
		st.mu.Unlock()
		// The ring survives shutdown draining, so a callback racing
		// Close still lands; one arriving after the final drain is
		// dropped with the loop — indistinguishable from the crash it
		// models.
		d.l.post(func() { done(err) })
	})
	st.mu.Lock()
	st.returned = true
	fired, err := st.fired, st.err
	st.mu.Unlock()
	if fired {
		done(err)
	}
}

// asyncWriteState tracks whether a store completed a staged write
// before WriteAsync returned to the event loop.
type asyncWriteState struct {
	mu       sync.Mutex
	returned bool
	fired    bool
	err      error
}
