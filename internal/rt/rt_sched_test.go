package rt

import (
	"sync"
	"testing"
	"time"

	"rpcv/internal/coordinator"
	"rpcv/internal/db"
	"rpcv/internal/node"
	"rpcv/internal/proto"
)

// collector records everything it receives (a scripted server stand-in
// for real-TCP scheduling tests).
type collector struct {
	env  node.Env
	mu   sync.Mutex
	acks []*proto.HeartbeatAck
}

func (c *collector) Start(env node.Env) { c.env = env }
func (c *collector) Stop()              {}
func (c *collector) Receive(_ proto.NodeID, m proto.Message) {
	if ack, ok := m.(*proto.HeartbeatAck); ok {
		c.mu.Lock()
		c.acks = append(c.acks, ack)
		c.mu.Unlock()
	}
}

func (c *collector) tasks() []proto.TaskAssignment {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []proto.TaskAssignment
	for _, a := range c.acks {
		out = append(out, a.Tasks...)
	}
	return out
}

// TestDeadlinePolicyOverTCP hosts a deadline-policy coordinator on the
// real runtime and checks that pending work comes back
// earliest-deadline-first — the sched engine wired through rt exactly
// as cmd/rpcv-coordinator's -policy flag does it.
func TestDeadlinePolicyOverTCP(t *testing.T) {
	co := coordinator.New(coordinator.Config{
		Coordinators: []proto.NodeID{"co"},
		Policy:       "deadline",
		DBCost:       db.CostModel{PerOp: time.Microsecond},
	})
	rc, err := Start(Config{ID: "co", ListenAddr: "127.0.0.1:0", Handler: co, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	sv := &collector{}
	rs, err := Start(Config{ID: "sv", ListenAddr: "127.0.0.1:0", Handler: sv, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	rc.SetPeer("sv", rs.Addr())
	rs.SetPeer("co", rc.Addr())

	submit := func(seq int, deadline time.Duration) {
		m := &proto.Submit{
			Call:     proto.CallID{User: "u", Session: 1, Seq: proto.RPCSeq(seq)},
			Service:  "synthetic",
			Params:   []byte("p"),
			ExecTime: time.Second,
			Deadline: deadline,
		}
		rs.Do(func() { sv.env.Send("co", m) })
	}
	submit(1, time.Hour)
	submit(2, time.Minute)
	submit(3, 10*time.Minute)

	// Give the submissions time to register, then pull all three.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		rs.Do(func() {
			sv.env.Send("co", &proto.Heartbeat{From: "sv", Role: proto.RoleServer, Capacity: 10, WantWork: true})
		})
		if len(sv.tasks()) >= 3 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	got := sv.tasks()
	if len(got) < 3 {
		t.Fatalf("got %d assignments, want 3", len(got))
	}
	want := []proto.RPCSeq{2, 3, 1}
	for i, w := range want {
		if got[i].Task.Call.Seq != w {
			t.Fatalf("assignment order %v, want EDF %v", got, want)
		}
	}
}
