package rt

// The pooled transport: one sender goroutine per peer owns a single
// long-lived TCP connection, so sustained traffic pays the dial (and,
// on the gob codec, the type-descriptor handshake) once per connection
// instead of once per message. With the default binary wire codec the
// sender opens the connection with the two-byte magic/version preface
// and appends length-prefixed frames into one pooled buffer per batch
// — zero allocations on the steady-state send path. Semantics stay the
// paper's best-effort channel:
//
//   - enqueue never blocks the caller; a full queue drops the oldest
//     envelope (indistinguishable from network loss, which the
//     protocol absorbs by design);
//   - everything queued at flush time is coalesced into one write;
//   - a broken or unreachable connection silently drops the batch and
//     redials with jittered exponential backoff — connection breaks
//     are NEVER fault signals, only heartbeat timeouts are;
//   - after IdleTimeout without traffic the sender closes the
//     connection and retires, returning a quiet peer to the paper's
//     connection-less behaviour.
//
// The read side (Runtime.handleConn) auto-detects the codec from the
// connection's first byte, then decodes frames (binary) or envelopes
// (gob) until EOF, so nodes on either -wire setting and the legacy
// one-envelope-per-connection transport (Config.LegacyTransport) all
// interoperate.

import (
	"bufio"
	"encoding/gob"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rpcv/internal/proto"
)

const (
	defaultQueueDepth      = 128
	defaultIdleTimeout     = 30 * time.Second
	defaultMaxInboundConns = 256

	// Redial backoff bounds (jittered exponential).
	backoffMin = 50 * time.Millisecond
	backoffMax = 2 * time.Second
)

// TransportStats is a snapshot of a runtime's transport counters.
type TransportStats struct {
	// Sent counts envelopes handed to the OS.
	Sent uint64
	// Flushes counts connection writes; Sent/Flushes is the achieved
	// coalescing factor (always 1 on the legacy transport).
	Flushes uint64
	// Dropped counts envelopes lost locally: queue overflow, dial
	// failure, or a connection that broke mid-batch.
	Dropped uint64
	// Redials counts dial attempts after a sender's first.
	Redials uint64
	// Sheds counts inbound connections closed at accept because
	// MaxInboundConns was reached.
	Sheds uint64
}

// transportCounters is the atomic backing store of TransportStats.
type transportCounters struct {
	sent, flushes, dropped, redials, sheds atomic.Uint64
}

// TransportStats returns the current transport counters.
func (r *Runtime) TransportStats() TransportStats {
	return TransportStats{
		Sent:    r.stats.sent.Load(),
		Flushes: r.stats.flushes.Load(),
		Dropped: r.stats.dropped.Load(),
		Redials: r.stats.redials.Load(),
		Sheds:   r.stats.sheds.Load(),
	}
}

// outMsg is one queued envelope: the message plus the wire From of
// the loop that sent it (tagged on multi-loop runtimes, the bare node
// ID on single-loop ones — see route.go).
type outMsg struct {
	msg  proto.Message
	from proto.NodeID
}

// sender owns the pooled connection to one peer.
type sender struct {
	rt *Runtime
	to proto.NodeID

	mu      sync.Mutex
	queue   []outMsg
	retired bool

	wake chan struct{} // 1-buffered doorbell
}

// senderFor returns the live sender for a peer, creating it (and its
// goroutine) when none exists or the previous one retired at idle.
func (r *Runtime) senderFor(to proto.NodeID) *sender {
	r.sendMu.Lock()
	defer r.sendMu.Unlock()
	if s, ok := r.senders[to]; ok {
		return s
	}
	s := &sender{rt: r, to: to, wake: make(chan struct{}, 1)}
	r.senders[to] = s
	r.wg.Add(1)
	go s.run()
	return s
}

// enqueue adds msg to the bounded queue, dropping the oldest envelope
// when full. It never blocks. If the sender retired concurrently it
// re-resolves a fresh one.
func (s *sender) enqueue(msg outMsg) {
	for {
		s.mu.Lock()
		if s.retired {
			s.mu.Unlock()
			s = s.rt.senderFor(s.to)
			continue
		}
		if len(s.queue) >= s.rt.cfg.QueueDepth {
			copy(s.queue, s.queue[1:])
			s.queue = s.queue[:len(s.queue)-1]
			s.rt.stats.dropped.Add(1)
		}
		s.queue = append(s.queue, msg)
		s.mu.Unlock()
		select {
		case s.wake <- struct{}{}:
		default:
		}
		return
	}
}

// drain takes the whole queue: one coalesced batch.
func (s *sender) drain() []outMsg {
	s.mu.Lock()
	batch := s.queue
	s.queue = nil
	s.mu.Unlock()
	return batch
}

// tryRetire atomically unregisters an idle sender so a later send
// creates a fresh one. It fails if messages arrived meanwhile.
func (s *sender) tryRetire() bool {
	s.rt.sendMu.Lock()
	defer s.rt.sendMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) > 0 {
		return false
	}
	s.retired = true
	delete(s.rt.senders, s.to)
	return true
}

// run is the sender goroutine: wait for work, flush it coalesced,
// redial with backoff on failure, retire at idle.
func (s *sender) run() {
	defer s.rt.wg.Done()

	binaryWire := s.rt.cfg.Wire == proto.WireBinary
	var conn net.Conn
	var bw *bufio.Writer
	var enc *gob.Encoder
	var dialedAddr string
	closeConn := func() {
		if conn != nil {
			s.rt.untrack(conn)
			conn.Close()
			conn, bw, enc = nil, nil, nil
		}
	}
	defer closeConn()

	backoff := backoffMin
	dialed := false
	idle := time.NewTimer(s.rt.cfg.IdleTimeout)
	defer idle.Stop()

	for {
		select {
		case <-s.rt.quit:
			return
		case <-s.wake:
		case <-idle.C:
			// Quiet peer: close the pooled connection and retire —
			// back to the paper's connection-less behaviour.
			if s.tryRetire() {
				return
			}
			idle.Reset(s.rt.cfg.IdleTimeout)
			continue
		}

		for {
			batch := s.drain()
			if len(batch) == 0 {
				break
			}
			addr, ok := s.rt.lookup(s.to)
			if !ok {
				s.rt.stats.dropped.Add(uint64(len(batch)))
				break
			}
			if conn != nil && addr != dialedAddr {
				// The directory moved the peer (SetPeer): abandon the
				// connection to the old endpoint — the legacy
				// transport re-resolved on every send, and a live-but-
				// wrong connection must not pin traffic there forever.
				closeConn()
			}
			if conn == nil {
				c, err := net.DialTimeout("tcp", addr, s.rt.cfg.DialTimeout)
				if dialed {
					s.rt.stats.redials.Add(1)
				}
				dialed = true
				if err != nil {
					// Unreachable peer: the batch is lost (best
					// effort) and the next attempt waits a jittered
					// backoff, so a dead peer costs one dial per
					// window instead of one per message.
					s.rt.stats.dropped.Add(uint64(len(batch)))
					select {
					case <-s.rt.quit:
						return
					case <-time.After(jitter(backoff)):
					}
					if backoff *= 2; backoff > backoffMax {
						backoff = backoffMax
					}
					continue
				}
				if !s.rt.track(c) {
					return // shutting down; track closed c
				}
				conn, bw = c, bufio.NewWriter(c)
				if binaryWire {
					// The preface rides the first batch's flush: one
					// write announces the codec version for the whole
					// connection.
					_, _ = bw.Write(proto.FramePreface[:])
				} else {
					enc = gob.NewEncoder(bw)
				}
				dialedAddr = addr
				backoff = backoffMin
			}
			// One deadline and one envelope serve the whole batch: the
			// per-message work inside the loop is encoding only.
			_ = conn.SetWriteDeadline(time.Now().Add(time.Minute))
			var werr error
			framed := len(batch)
			if binaryWire {
				buf := proto.GetBuffer()
				for _, m := range batch {
					var ferr error
					if buf.B, ferr = proto.AppendFrame(buf.B, m.from, m.msg); ferr != nil {
						// Over the frame cap: drop this message alone
						// (best effort) instead of poisoning the
						// connection for the whole batch.
						framed--
						s.rt.stats.dropped.Add(1)
						s.rt.cfg.Logf("rt(%s): %v", s.rt.cfg.ID, ferr)
					}
				}
				_, werr = bw.Write(buf.B)
				proto.PutBuffer(buf)
			} else {
				var env envelope
				for _, m := range batch {
					env.From, env.Msg = m.from, m.msg
					if werr = enc.Encode(&env); werr != nil {
						break
					}
				}
			}
			if werr == nil {
				werr = bw.Flush()
			}
			if werr != nil {
				// Broken connection: delivery of the whole batch is
				// unknown (Encode lands in the bufio buffer, so a
				// flush error loses envelopes that "encoded fine"),
				// and the encoder's stream state is unrecoverable —
				// count everything dropped, close, redial on the next
				// batch. Never a fault signal.
				s.rt.stats.dropped.Add(uint64(framed))
				closeConn()
				continue
			}
			s.rt.stats.sent.Add(uint64(framed))
			s.rt.stats.flushes.Add(1)
			s.rt.obsBatch.Observe(int64(framed))
		}
		resetTimer(idle, s.rt.cfg.IdleTimeout)
	}
}

// resetTimer re-arms t, draining a stale tick first so an expiry that
// raced the flush loop does not fire immediately.
func resetTimer(t *time.Timer, d time.Duration) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	t.Reset(d)
}

// jitter spreads d uniformly over [d/2, 3d/2) so reconnecting peers do
// not synchronize their dials.
func jitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}
