package rt

// The multi-core runtime: a Runtime hosts Config.Loops event loops,
// each a goroutine owning one partition of the handler (see
// node.PartitionedHandler). Sessions are hash-pinned to a loop with
// the same consistent-hash construction the shard layer uses for
// coordinator rings (shard.LoopMap), so every message of one (user,
// session) pair executes on one loop and the handlers keep their
// no-locking discipline per loop.
//
// Each loop owns three inbound paths:
//
//   - mailbox: a bounded channel fed by external producers — transport
//     delivery, Do/DoOn/Ping, admin scrapes. External producers may
//     block briefly when a loop falls behind (backpressure).
//   - ring: an unbounded lock-free MPSC handoff ring (Vyukov intrusive
//     queue) + a 1-buffered wake doorbell, fed by producers that must
//     NEVER block: the store committer completing per-loop WriteAsync
//     callbacks (a blocked committer would deadlock a loop waiting in
//     a synchronous Write) and cross-loop handoffs. post() is the only
//     way onto it.
//   - timers: a per-loop min-heap of deadlines; the loop arms a single
//     runtime timer to the earliest one. After/Stop run on the owning
//     loop, so the heap lock is uncontended.
//
// Each loop also gets its own RNG (seeded per loop — see the
// rtEnv.Rand race fix) and its own store lane when the engine supports
// per-loop staging (store.Laner): stage under a lane-private lock, one
// shared committer fsync covering every loop's batch.

import (
	"container/heap"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"rpcv/internal/node"
	"rpcv/internal/store"
)

// loop is one per-core event loop.
type loop struct {
	idx     int
	r       *Runtime
	handler node.Handler

	mailbox chan func()
	ring    mpscRing
	wake    chan struct{} // 1-buffered doorbell for the ring

	rng   *rand.Rand
	store store.Store // per-loop lane, or the shared engine
	disk  node.Disk
	env   *rtEnv

	tmu    sync.Mutex
	timers timerHeap

	// Scrape-time counters (atomics: read off-loop by obs funcs).
	tasks    atomic.Uint64 // closures executed on the loop
	handoffs atomic.Uint64 // ring posts (cross-loop / committer traffic)
}

// post puts fn on the loop's lock-free handoff ring and rings the
// doorbell. It never blocks, whatever the loop is doing — the path for
// producers that must not stall: the store committer and other loops.
func (l *loop) post(fn func()) {
	l.ring.push(fn)
	l.handoffs.Add(1)
	select {
	case l.wake <- struct{}{}:
	default: // doorbell already rung
	}
}

// run is the loop goroutine: execute mailbox work, drain ring
// handoffs, fire due timers, exit on quit after draining what is
// already queued.
func (l *loop) run() {
	defer l.r.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	armed := false
	for {
		var timerC <-chan time.Time
		if wait, ok := l.nextTimer(); ok {
			if armed && !timer.Stop() {
				<-timer.C
			}
			timer.Reset(wait)
			armed = true
			timerC = timer.C
		} else if armed {
			if !timer.Stop() {
				<-timer.C
			}
			armed = false
		}
		select {
		case fn := <-l.mailbox:
			l.tasks.Add(1)
			fn()
		case <-l.wake:
			l.drainRing()
		case <-timerC:
			armed = false
			l.fireDue()
		case <-l.r.quit:
			l.drainPending()
			return
		}
	}
}

// drainRing executes everything currently on the handoff ring.
func (l *loop) drainRing() {
	for {
		fn, ok := l.ring.pop()
		if !ok {
			return
		}
		l.tasks.Add(1)
		fn()
	}
}

// drainPending empties the mailbox and ring once quit is closed, so
// work accepted before shutdown still executes.
func (l *loop) drainPending() {
	for {
		select {
		case fn := <-l.mailbox:
			l.tasks.Add(1)
			fn()
		default:
			l.drainRing()
			return
		}
	}
}

// ---------------------------------------------------------------------
// Per-loop timers
// ---------------------------------------------------------------------

// loopTimer is one pending After deadline on a loop's heap.
type loopTimer struct {
	l       *loop
	at      time.Time
	fn      func()
	heapIdx int // -1 once fired or stopped
}

// Stop implements node.Timer.
func (t *loopTimer) Stop() {
	t.l.tmu.Lock()
	if t.heapIdx >= 0 {
		heap.Remove(&t.l.timers, t.heapIdx)
		t.heapIdx = -1
	}
	t.l.tmu.Unlock()
}

// after registers fn to fire on this loop no earlier than d from now.
// Called on the owning loop (Env contract), so the loop re-arms its
// wait on the next select iteration without a cross-goroutine wake.
func (l *loop) after(d time.Duration, fn func()) node.Timer {
	t := &loopTimer{l: l, at: time.Now().Add(d), fn: fn}
	l.tmu.Lock()
	heap.Push(&l.timers, t)
	l.tmu.Unlock()
	return t
}

// nextTimer returns the wait until the earliest pending deadline.
func (l *loop) nextTimer() (time.Duration, bool) {
	l.tmu.Lock()
	defer l.tmu.Unlock()
	if len(l.timers) == 0 {
		return 0, false
	}
	wait := time.Until(l.timers[0].at)
	if wait < 0 {
		wait = 0
	}
	return wait, true
}

// fireDue pops and runs every timer whose deadline has passed.
func (l *loop) fireDue() {
	now := time.Now()
	for {
		l.tmu.Lock()
		if len(l.timers) == 0 || l.timers[0].at.After(now) {
			l.tmu.Unlock()
			return
		}
		t := heap.Pop(&l.timers).(*loopTimer)
		t.heapIdx = -1
		l.tmu.Unlock()
		l.tasks.Add(1)
		t.fn()
	}
}

// timerHeap is a min-heap of loopTimers by deadline.
type timerHeap []*loopTimer

func (h timerHeap) Len() int           { return len(h) }
func (h timerHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h timerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].heapIdx, h[j].heapIdx = i, j }
func (h *timerHeap) Push(x any)        { t := x.(*loopTimer); t.heapIdx = len(*h); *h = append(*h, t) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// ---------------------------------------------------------------------
// Lock-free MPSC handoff ring
// ---------------------------------------------------------------------

// mpscRing is Vyukov's intrusive multi-producer single-consumer queue:
// producers do one atomic swap plus one atomic store (wait-free), the
// single consumer pops without atomics on its own side. Unbounded — a
// producer can always complete, which is the property the committer
// needs.
type mpscRing struct {
	head atomic.Pointer[ringNode] // producers swap themselves in here
	tail *ringNode                // consumer-owned
	stub ringNode
	once sync.Once
}

type ringNode struct {
	next atomic.Pointer[ringNode]
	fn   func()
}

func (q *mpscRing) init() {
	q.once.Do(func() {
		q.head.Store(&q.stub)
		q.tail = &q.stub
	})
}

// push enqueues fn. Safe from any goroutine, never blocks.
func (q *mpscRing) push(fn func()) {
	q.init()
	q.pushNode(&ringNode{fn: fn})
}

func (q *mpscRing) pushNode(n *ringNode) {
	n.next.Store(nil)
	prev := q.head.Swap(n)
	// Between the swap and this store the queue is momentarily
	// disconnected; pop reports empty and the producer's doorbell
	// (rung after push returns) re-drains.
	prev.next.Store(n)
}

// pop dequeues the oldest fn. Consumer-only.
func (q *mpscRing) pop() (func(), bool) {
	q.init()
	tail := q.tail
	next := tail.next.Load()
	if tail == &q.stub {
		if next == nil {
			return nil, false
		}
		q.tail = next
		tail = next
		next = tail.next.Load()
	}
	if next != nil {
		q.tail = next
		fn := tail.fn
		tail.fn = nil
		return fn, true
	}
	if tail != q.head.Load() {
		return nil, false // producer mid-push; its doorbell follows
	}
	q.pushNode(&q.stub)
	if next = tail.next.Load(); next != nil {
		q.tail = next
		fn := tail.fn
		tail.fn = nil
		return fn, true
	}
	return nil, false
}
