package rt

import (
	"sync"
	"testing"
	"time"

	"rpcv/internal/client"
	"rpcv/internal/coordinator"
	"rpcv/internal/db"
	"rpcv/internal/msglog"
	"rpcv/internal/proto"
	"rpcv/internal/server"
	"rpcv/internal/store"
)

// TestWALStorePersistsAcrossRuntimes mirrors the files-engine
// persistence test on the wal engine: a value written by one runtime
// incarnation must be readable by the next over the same directory.
func TestWALStorePersistsAcrossRuntimes(t *testing.T) {
	dir := t.TempDir()
	a := &echo{}
	ra, err := Start(Config{ID: "a", Handler: a, DiskDir: dir, Store: "wal", Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	ra.Do(func() {
		if err := a.env.Disk().Write("msglog/00001", []byte("payload")); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	ra.Close()

	b := &echo{}
	rb, err := Start(Config{ID: "a", Handler: b, DiskDir: dir, Store: "wal", Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	rb.Do(func() {
		v, ok := b.env.Disk().Read("msglog/00001")
		if !ok || string(v) != "payload" {
			t.Errorf("read back = %q, %v", v, ok)
		}
		if err := b.env.Disk().Delete("msglog/00001"); err != nil {
			t.Errorf("delete: %v", err)
		}
	})
}

// TestStoreEngineMismatchRefused: a runtime pointed at the other
// engine's directory must fail Start instead of presenting an empty
// store to a recovering handler.
func TestStoreEngineMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	a := &echo{}
	ra, err := Start(Config{ID: "a", Handler: a, DiskDir: dir, Store: "wal", Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	ra.Do(func() {
		if err := a.env.Disk().Write("k", []byte("v")); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	ra.Close()
	if _, err := Start(Config{ID: "a", Handler: &echo{}, DiskDir: dir, Store: "files", Logf: quietLogf}); err == nil {
		t.Fatal("files engine opened a wal directory")
	}
}

// TestWALCoordinatorKillAndRestartRecovery is the crash-recovery
// cluster test: a wal-backed coordinator is killed abruptly mid-load
// and restarted over the same store directory. No completed result may
// be lost — every submission still yields its result to the client,
// and the reopened store holds a finished, durable record for every
// call.
func TestWALCoordinatorKillAndRestartRecovery(t *testing.T) {
	const (
		total   = 60
		beat    = 25 * time.Millisecond
		suspect = 250 * time.Millisecond
	)
	coordDir := t.TempDir()

	newCoord := func() *coordinator.Coordinator {
		return coordinator.New(coordinator.Config{
			Coordinators:     []proto.NodeID{"co"},
			HeartbeatPeriod:  beat,
			HeartbeatTimeout: suspect,
			DBCost:           db.CostModel{PerOp: 10 * time.Microsecond},
		})
	}
	coordCfg := func(h *coordinator.Coordinator) Config {
		return Config{ID: "co", ListenAddr: "127.0.0.1:0", Handler: h,
			DiskDir: coordDir, Store: "wal", Logf: quietLogf}
	}
	rco, err := Start(coordCfg(newCoord()))
	if err != nil {
		t.Fatal(err)
	}
	dir := Directory{"co": rco.Addr()}

	services := map[string]server.Service{
		"noop": func([]byte) ([]byte, error) { return []byte("ok"), nil },
	}
	var rsvs []*Runtime
	for _, id := range []proto.NodeID{"sv0", "sv1"} {
		sv := server.New(server.Config{
			Coordinators:     []proto.NodeID{"co"},
			HeartbeatPeriod:  beat,
			SuspicionTimeout: suspect,
			Services:         services,
		})
		rsv, err := Start(Config{ID: id, ListenAddr: "127.0.0.1:0", Handler: sv,
			Directory: dir, Logf: quietLogf})
		if err != nil {
			t.Fatal(err)
		}
		defer rsv.Close()
		rco.SetPeer(id, rsv.Addr())
		rsvs = append(rsvs, rsv)
	}

	var (
		mu      sync.Mutex
		results = map[proto.RPCSeq]bool{}
	)
	cli := client.New(client.Config{
		User:             "u",
		Session:          1,
		Coordinators:     []proto.NodeID{"co"},
		PollPeriod:       beat,
		SuspicionTimeout: suspect,
		Logging:          msglog.NonBlockingPessimistic,
		Disk:             msglog.InstantDisk(),
		OnResult: func(res proto.Result, _ time.Time) {
			mu.Lock()
			results[res.Call.Seq] = true
			mu.Unlock()
		},
	})
	rcli, err := Start(Config{ID: "cli", ListenAddr: "127.0.0.1:0", Handler: cli,
		Directory: dir, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer rcli.Close()
	rco.SetPeer("cli", rcli.Addr())

	rcli.Do(func() {
		for i := 0; i < total; i++ {
			cli.Submit("noop", nil, 0, 0)
		}
	})

	resultCount := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(results)
	}
	// Let the grid complete part of the load, then kill the
	// coordinator abruptly (crash-stop: no draining beyond what a real
	// power cut through the group commit would allow).
	if !waitFor(t, 20*time.Second, func() bool { return resultCount() >= total/3 }) {
		t.Fatalf("grid never warmed up: %d results", resultCount())
	}
	completedBeforeCrash := resultCount()
	rco.Close()

	// Restart over the same store directory: recovery rebuilds the job
	// table from snapshot + log tail, re-queues interrupted work and
	// keeps finished records.
	rco2, err := Start(coordCfg(newCoord()))
	if err != nil {
		t.Fatalf("coordinator restart: %v", err)
	}
	rco2.SetPeer("cli", rcli.Addr())
	for i, rsv := range rsvs {
		rco2.SetPeer(rsv.ID(), rsv.Addr())
		rsvs[i].SetPeer("co", rco2.Addr())
	}
	rcli.SetPeer("co", rco2.Addr())

	if !waitFor(t, 60*time.Second, func() bool { return resultCount() >= total }) {
		t.Fatalf("after restart: %d/%d results (had %d before the crash) — completed work was lost",
			resultCount(), total, completedBeforeCrash)
	}
	rco2.Close()

	// The reopened store must hold a durable finished record for every
	// call — what the next incarnation would recover from.
	st, err := store.OpenWAL(coordDir, store.WALOptions{})
	if err != nil {
		t.Fatalf("reopen coordinator store: %v", err)
	}
	defer func() { _ = st.Close() }() // read-only reopen; nothing to flush
	finished := 0
	for _, key := range st.Keys("coord/job/") {
		raw, ok := st.Read(key)
		if !ok {
			continue
		}
		rec, err := proto.DecodeJob(raw)
		if err != nil {
			t.Fatalf("corrupt job record %s after recovery: %v", key, err)
		}
		if rec.State == proto.TaskFinished {
			finished++
		}
	}
	if finished != total {
		t.Fatalf("store holds %d finished records, want %d", finished, total)
	}
}
