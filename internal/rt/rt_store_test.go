package rt

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"rpcv/internal/client"
	"rpcv/internal/coordinator"
	"rpcv/internal/db"
	"rpcv/internal/msglog"
	"rpcv/internal/proto"
	"rpcv/internal/server"
	"rpcv/internal/store"
)

// TestWALStorePersistsAcrossRuntimes mirrors the files-engine
// persistence test on the wal engine: a value written by one runtime
// incarnation must be readable by the next over the same directory.
func TestWALStorePersistsAcrossRuntimes(t *testing.T) {
	dir := t.TempDir()
	a := &echo{}
	ra, err := Start(Config{ID: "a", Handler: a, DiskDir: dir, Store: "wal", Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	ra.Do(func() {
		if err := a.env.Disk().Write("msglog/00001", []byte("payload")); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	ra.Close()

	b := &echo{}
	rb, err := Start(Config{ID: "a", Handler: b, DiskDir: dir, Store: "wal", Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	rb.Do(func() {
		v, ok := b.env.Disk().Read("msglog/00001")
		if !ok || string(v) != "payload" {
			t.Errorf("read back = %q, %v", v, ok)
		}
		if err := b.env.Disk().Delete("msglog/00001"); err != nil {
			t.Errorf("delete: %v", err)
		}
	})
}

// TestStoreEngineMismatchRefused: a runtime pointed at the other
// engine's directory must fail Start instead of presenting an empty
// store to a recovering handler.
func TestStoreEngineMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	a := &echo{}
	ra, err := Start(Config{ID: "a", Handler: a, DiskDir: dir, Store: "wal", Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	ra.Do(func() {
		if err := a.env.Disk().Write("k", []byte("v")); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	ra.Close()
	if _, err := Start(Config{ID: "a", Handler: &echo{}, DiskDir: dir, Store: "files", Logf: quietLogf}); err == nil {
		t.Fatal("files engine opened a wal directory")
	}
}

// TestWALCoordinatorKillAndRestartRecovery is the crash-recovery
// cluster test: a wal-backed coordinator is killed abruptly mid-load
// and restarted over the same store directory. No completed result may
// be lost — every submission still yields its result to the client,
// and the reopened store holds a finished, durable record for every
// call.
func TestWALCoordinatorKillAndRestartRecovery(t *testing.T) {
	runWALKillRestart(t, 1, 1)
}

// TestWALCoordinatorKillAndRestartRecoveryMultiLoop is the same crash
// over a partitioned coordinator: four event loops, four client
// sessions hash-pinned across them, each partition writing job records
// through its own store lane and its own epoch key. The restarted
// incarnation must hand every partition exactly its session slice
// back, with no record lost to a lane whose staging missed the final
// group commit.
func TestWALCoordinatorKillAndRestartRecoveryMultiLoop(t *testing.T) {
	runWALKillRestart(t, 4, 4)
}

// runWALKillRestart drives one kill-and-restart recovery scenario with
// the coordinator on the given loop count and nClients one-session
// clients spread over distinct users.
func runWALKillRestart(t *testing.T, loops, nClients int) {
	const (
		total   = 60
		beat    = 25 * time.Millisecond
		suspect = 250 * time.Millisecond
	)
	coordDir := t.TempDir()

	newCoord := func() *coordinator.Coordinator {
		return coordinator.New(coordinator.Config{
			Coordinators:     []proto.NodeID{"co"},
			HeartbeatPeriod:  beat,
			HeartbeatTimeout: suspect,
			DBCost:           db.CostModel{PerOp: 10 * time.Microsecond},
		})
	}
	coordCfg := func(h *coordinator.Coordinator) Config {
		return Config{ID: "co", ListenAddr: "127.0.0.1:0", Handler: h,
			DiskDir: coordDir, Store: "wal", Loops: loops, Logf: quietLogf}
	}
	rco, err := Start(coordCfg(newCoord()))
	if err != nil {
		t.Fatal(err)
	}
	if rco.Loops() != loops {
		t.Fatalf("coordinator runs %d loops, want %d", rco.Loops(), loops)
	}
	dir := Directory{"co": rco.Addr()}

	services := map[string]server.Service{
		"noop": func([]byte) ([]byte, error) { return []byte("ok"), nil },
	}
	var rsvs []*Runtime
	for _, id := range []proto.NodeID{"sv0", "sv1"} {
		sv := server.New(server.Config{
			Coordinators:     []proto.NodeID{"co"},
			HeartbeatPeriod:  beat,
			SuspicionTimeout: suspect,
			Services:         services,
		})
		rsv, err := Start(Config{ID: id, ListenAddr: "127.0.0.1:0", Handler: sv,
			Directory: dir, Logf: quietLogf})
		if err != nil {
			t.Fatal(err)
		}
		defer rsv.Close()
		rco.SetPeer(id, rsv.Addr())
		rsvs = append(rsvs, rsv)
	}

	var (
		mu      sync.Mutex
		results = map[proto.CallID]bool{}
	)
	perClient := total / nClients
	var rclis []*Runtime
	for c := 0; c < nClients; c++ {
		user := proto.UserID(fmt.Sprintf("u%d", c))
		cli := client.New(client.Config{
			User:             user,
			Session:          proto.SessionID(c + 1),
			Coordinators:     []proto.NodeID{"co"},
			PollPeriod:       beat,
			SuspicionTimeout: suspect,
			Logging:          msglog.NonBlockingPessimistic,
			Disk:             msglog.InstantDisk(),
			OnResult: func(res proto.Result, _ time.Time) {
				mu.Lock()
				results[res.Call] = true
				mu.Unlock()
			},
		})
		id := proto.NodeID(fmt.Sprintf("cli%d", c))
		rcli, err := Start(Config{ID: id, ListenAddr: "127.0.0.1:0", Handler: cli,
			Directory: dir, Logf: quietLogf})
		if err != nil {
			t.Fatal(err)
		}
		defer rcli.Close()
		rco.SetPeer(id, rcli.Addr())
		rclis = append(rclis, rcli)
		rcli.Do(func() {
			for i := 0; i < perClient; i++ {
				cli.Submit("noop", nil, 0, 0)
			}
		})
	}

	resultCount := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(results)
	}
	// Let the grid complete part of the load, then kill the
	// coordinator abruptly (crash-stop: no draining beyond what a real
	// power cut through the group commit would allow).
	if !waitFor(t, 20*time.Second, func() bool { return resultCount() >= total/3 }) {
		t.Fatalf("grid never warmed up: %d results", resultCount())
	}
	completedBeforeCrash := resultCount()
	rco.Close()

	// Restart over the same store directory: recovery rebuilds the job
	// table from snapshot + log tail — each partition loading only its
	// owned session slice — re-queues interrupted work and keeps
	// finished records.
	rco2, err := Start(coordCfg(newCoord()))
	if err != nil {
		t.Fatalf("coordinator restart: %v", err)
	}
	for _, rcli := range rclis {
		rco2.SetPeer(rcli.ID(), rcli.Addr())
		rcli.SetPeer("co", rco2.Addr())
	}
	for i, rsv := range rsvs {
		rco2.SetPeer(rsv.ID(), rsv.Addr())
		rsvs[i].SetPeer("co", rco2.Addr())
	}

	if !waitFor(t, 60*time.Second, func() bool { return resultCount() >= total }) {
		t.Fatalf("after restart: %d/%d results (had %d before the crash) — completed work was lost",
			resultCount(), total, completedBeforeCrash)
	}
	rco2.Close()

	// The reopened store must hold a durable finished record for every
	// call — what the next incarnation would recover from.
	st, err := store.OpenWAL(coordDir, store.WALOptions{})
	if err != nil {
		t.Fatalf("reopen coordinator store: %v", err)
	}
	defer func() { _ = st.Close() }() // read-only reopen; nothing to flush
	finished := 0
	for _, key := range st.Keys("coord/job/") {
		raw, ok := st.Read(key)
		if !ok {
			continue
		}
		rec, err := proto.DecodeJob(raw)
		if err != nil {
			t.Fatalf("corrupt job record %s after recovery: %v", key, err)
		}
		if rec.State == proto.TaskFinished {
			finished++
		}
	}
	if finished != total {
		t.Fatalf("store holds %d finished records, want %d", finished, total)
	}
}
