package rt

import (
	"testing"
	"time"

	"rpcv/internal/client"
	"rpcv/internal/coordinator"
	"rpcv/internal/node"
	"rpcv/internal/proto"
	"rpcv/internal/server"
	"rpcv/internal/shard"
)

// TestShardRedirectOverTCP runs two single-coordinator rings on the
// real TCP runtime and hands the client a stale shard map whose ring
// assignment is swapped: the first submission hits the wrong ring, the
// ShardRedirect carries the newer map, and the call completes on the
// right one. This covers the gob path of every shard message end to
// end.
func TestShardRedirectOverTCP(t *testing.T) {
	rings := [][]proto.NodeID{{"coord-00"}, {"coord-01"}}
	truth := shard.New(2, rings, 0)
	// Stale version 1: same shard count, rings swapped, so the owner
	// shard index resolves to the wrong coordinator.
	stale := shard.New(1, [][]proto.NodeID{{"coord-01"}, {"coord-00"}}, 0)

	var rts []*Runtime
	newRT := func(id proto.NodeID, h node.Handler) *Runtime {
		rt, err := Start(Config{ID: id, ListenAddr: "127.0.0.1:0", Handler: h, Logf: quietLogf})
		if err != nil {
			t.Fatalf("start %s: %v", id, err)
		}
		rts = append(rts, rt)
		return rt
	}
	defer func() {
		for _, r := range rts {
			r.Close()
		}
	}()

	co0 := coordinator.New(coordinator.Config{Coordinators: rings[0], Shard: truth, HeartbeatPeriod: 200 * time.Millisecond})
	co1 := coordinator.New(coordinator.Config{Coordinators: rings[1], Shard: truth, HeartbeatPeriod: 200 * time.Millisecond})
	r0 := newRT("coord-00", co0)
	r1 := newRT("coord-01", co1)

	services := map[string]server.Service{
		"echo": func(p []byte) ([]byte, error) { return append([]byte(nil), p...), nil },
	}
	sv0 := server.New(server.Config{Coordinators: rings[0], HeartbeatPeriod: 200 * time.Millisecond, Services: services})
	sv1 := server.New(server.Config{Coordinators: rings[1], HeartbeatPeriod: 200 * time.Millisecond, Services: services})
	rs0 := newRT("server-000", sv0)
	rs1 := newRT("server-001", sv1)

	var got *proto.Result
	done := make(chan struct{})
	cli := client.New(client.Config{
		User:       "grid-user",
		Session:    1,
		Shard:      stale,
		PollPeriod: 200 * time.Millisecond,
		OnResult: func(res proto.Result, _ time.Time) {
			got = &res
			close(done)
		},
	})
	rc := newRT("client-00", cli)

	// Full mesh directory: connection-less sends need addresses.
	addrs := map[proto.NodeID]string{
		"coord-00": r0.Addr(), "coord-01": r1.Addr(),
		"server-000": rs0.Addr(), "server-001": rs1.Addr(),
		"client-00": rc.Addr(),
	}
	for _, r := range rts {
		for id, addr := range addrs {
			if id != r.ID() {
				r.SetPeer(id, addr)
			}
		}
	}

	owner := truth.Owner("grid-user", 1)
	wrong := stale.Ring(owner)[0]
	right := truth.Ring(owner)[0]
	if wrong == right {
		t.Fatalf("test setup broken: stale and true maps agree")
	}

	rc.Do(func() { cli.Submit("echo", []byte("hello shards"), 0, 0) })

	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatalf("result never arrived; client preferred %v", cli.Preferred())
	}
	if string(got.Output) != "hello shards" {
		t.Fatalf("wrong result %q", got.Output)
	}

	var st client.Stats
	var smapVersion uint64
	rc.Do(func() {
		st = cli.StatsNow()
		smapVersion = cli.ShardMap().Version()
	})
	if st.Redirects == 0 {
		t.Errorf("expected a redirect from the stale map, got none")
	}
	if smapVersion != 2 {
		t.Errorf("client still caches map version %d, want 2", smapVersion)
	}
	if st.Preferred != right {
		t.Errorf("client preferred %s, want owner ring coordinator %s", st.Preferred, right)
	}
}
