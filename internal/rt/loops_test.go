package rt

// Tests of the multi-core runtime: partition routing (loop tags,
// session pinning, broadcast), the per-loop RNG race fix, per-loop
// liveness probes, and durable recovery across restarts with per-loop
// store lanes. The CI matrix runs this package under RPCV_LOOPS=1 and
// RPCV_LOOPS=4 (see testLoops), so every scenario is exercised both on
// the classic single loop and on a genuinely partitioned runtime.

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"rpcv/internal/node"
	"rpcv/internal/proto"
)

// testLoops returns the loop count multi-loop tests run with: the
// RPCV_LOOPS environment variable (the CI matrix) or 4.
func testLoops() int {
	if s := os.Getenv("RPCV_LOOPS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 4
}

// partSeen is one recorded delivery.
type partSeen struct {
	from proto.NodeID
	msg  proto.Message
}

// partRecorder is a partitioned test handler: each partition records
// what it received, so tests can assert exactly which loop a message
// landed on.
type partRecorder struct {
	idx int

	mu   sync.Mutex
	env  node.Env
	seen []partSeen

	kids []*partRecorder // root only, set by Partition
}

func (p *partRecorder) Start(env node.Env) {
	p.mu.Lock()
	p.env = env
	p.mu.Unlock()
}
func (p *partRecorder) Stop() {}
func (p *partRecorder) Receive(from proto.NodeID, m proto.Message) {
	p.mu.Lock()
	p.seen = append(p.seen, partSeen{from, m})
	p.mu.Unlock()
}

// Partition implements node.PartitionedHandler.
func (p *partRecorder) Partition(n int) []node.Handler {
	out := make([]node.Handler, n)
	out[0] = p
	p.kids = []*partRecorder{p}
	for i := 1; i < n; i++ {
		k := &partRecorder{idx: i}
		p.kids = append(p.kids, k)
		out[i] = k
	}
	return out
}

// partition returns partition i (the root itself when the runtime
// clamped to a single loop and never partitioned).
func (p *partRecorder) partition(i int) *partRecorder {
	if len(p.kids) == 0 {
		return p
	}
	return p.kids[i]
}

func (p *partRecorder) count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.seen)
}

func (p *partRecorder) first() partSeen {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seen[0]
}

// startPair boots two partitioned runtimes wired to each other.
func startPair(t *testing.T, loops int) (*partRecorder, *partRecorder, *Runtime, *Runtime) {
	t.Helper()
	a, b := &partRecorder{}, &partRecorder{}
	ra, err := Start(Config{ID: "a", ListenAddr: "127.0.0.1:0", Handler: a, Loops: loops, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ra.Close)
	rb, err := Start(Config{ID: "b", ListenAddr: "127.0.0.1:0", Handler: b, Loops: loops, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rb.Close)
	ra.SetPeer("b", rb.Addr())
	rb.SetPeer("a", ra.Addr())
	return a, b, ra, rb
}

// TestLoopTagRoutesPartitionToPartition: sessionless traffic from a
// multi-loop peer carries its originating loop in the wire From, and
// the receiver routes partition j's messages to its own partition j —
// with the tag stripped before the handler sees the sender ID.
func TestLoopTagRoutesPartitionToPartition(t *testing.T) {
	loops := testLoops()
	a, b, ra, rb := startPair(t, loops)
	_ = rb

	for j := 0; j < ra.Loops(); j++ {
		j := j
		ra.DoOn(j, func() {
			a.partition(j).env.Send("b", &proto.Heartbeat{From: "a", Role: proto.RoleClient})
		})
	}
	total := func() int {
		n := 0
		for j := 0; j < rb.Loops(); j++ {
			n += b.partition(j).count()
		}
		return n
	}
	if !waitFor(t, 5*time.Second, func() bool { return total() >= ra.Loops() }) {
		t.Fatalf("delivered %d of %d heartbeats", total(), ra.Loops())
	}
	for j := 0; j < rb.Loops(); j++ {
		p := b.partition(j)
		if p.count() != 1 {
			t.Errorf("partition %d saw %d messages, want exactly 1 (j -> j routing)", j, p.count())
			continue
		}
		if got := p.first().from; got != "a" {
			t.Errorf("partition %d saw from = %q, want loop tag stripped to %q", j, got, "a")
		}
	}
}

// TestSessionTrafficPinnedToOwner: a session-carrying message lands on
// the loop the runtime's LoopFor predicts, whatever loop count either
// side runs.
func TestSessionTrafficPinnedToOwner(t *testing.T) {
	loops := testLoops()
	b := &partRecorder{}
	rb, err := Start(Config{ID: "b", ListenAddr: "127.0.0.1:0", Handler: b, Loops: loops, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	a := &echo{}
	ra, err := Start(Config{ID: "a", ListenAddr: "127.0.0.1:0", Handler: a, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	ra.SetPeer("b", rb.Addr())

	for s := 1; s <= 8; s++ {
		call := proto.CallID{User: "u", Session: proto.SessionID(s), Seq: 1}
		ra.Do(func() {
			a.env.Send("b", &proto.Submit{Call: call, Service: "noop"})
		})
	}
	total := func() int {
		n := 0
		for j := 0; j < rb.Loops(); j++ {
			n += b.partition(j).count()
		}
		return n
	}
	if !waitFor(t, 5*time.Second, func() bool { return total() >= 8 }) {
		t.Fatalf("delivered %d of 8 submits", total())
	}
	// Every submit must sit on its session's owner loop and nowhere
	// else.
	byLoop := make(map[int]int)
	for j := 0; j < rb.Loops(); j++ {
		p := b.partition(j)
		p.mu.Lock()
		for _, s := range p.seen {
			sub := s.msg.(*proto.Submit)
			owner := rb.LoopFor(sub.Call.User, sub.Call.Session)
			if owner != j {
				t.Errorf("session %d delivered to loop %d, owner is %d", sub.Call.Session, j, owner)
			}
			byLoop[j]++
		}
		p.mu.Unlock()
	}
	if rb.Loops() > 1 && len(byLoop) < 2 {
		t.Errorf("all 8 sessions hashed onto loops %v; expected spread over %d loops", byLoop, rb.Loops())
	}
}

// TestServerHeartbeatBroadcast: a server heartbeat reaches every
// partition — each owns a disjoint session slice, and all of them must
// observe worker liveness.
func TestServerHeartbeatBroadcast(t *testing.T) {
	loops := testLoops()
	b := &partRecorder{}
	rb, err := Start(Config{ID: "b", ListenAddr: "127.0.0.1:0", Handler: b, Loops: loops, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	a := &echo{}
	ra, err := Start(Config{ID: "sv", ListenAddr: "127.0.0.1:0", Handler: a, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	ra.SetPeer("b", rb.Addr())

	ra.Do(func() { a.env.Send("b", &proto.Heartbeat{From: "sv", Role: proto.RoleServer}) })
	for j := 0; j < rb.Loops(); j++ {
		j := j
		if !waitFor(t, 5*time.Second, func() bool { return b.partition(j).count() >= 1 }) {
			t.Errorf("partition %d never saw the server heartbeat broadcast", j)
		}
	}
}

// TestRandPerLoop is the regression test for the shared-RNG race: every
// loop must own a private rand.Rand (concurrent draws across loops are
// what the -race run verifies), and with a fixed seed the streams must
// be distinct per loop, not one stream observed from N goroutines.
func TestRandPerLoop(t *testing.T) {
	loops := testLoops()
	h := &partRecorder{}
	ra, err := Start(Config{ID: "a", Handler: h, Loops: loops, Seed: 42, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()

	draws := make([][]int64, ra.Loops())
	var wg sync.WaitGroup
	for i := 0; i < ra.Loops(); i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				ra.DoOn(i, func() {
					draws[i] = append(draws[i], h.partition(i).env.Rand().Int63())
				})
			}
		}()
	}
	wg.Wait()
	for i := 0; i < ra.Loops(); i++ {
		if len(draws[i]) != 200 {
			t.Fatalf("loop %d drew %d values, want 200", i, len(draws[i]))
		}
		for j := i + 1; j < ra.Loops(); j++ {
			if draws[i][0] == draws[j][0] && draws[i][1] == draws[j][1] {
				t.Errorf("loops %d and %d share an RNG stream (identical draws)", i, j)
			}
		}
	}
}

// wedgeLoop parks the calling goroutine until block closes. Wedging a
// loop is the entire point of the stalled-probe test, so the block is
// deliberate, not a latent bug for the loop discipline to flag.
//
//rpcv:loop-safe
func wedgeLoop(started, block chan struct{}) {
	close(started)
	<-block
}

// TestPingLoopReportsStalledLoop: a wedged loop with a full mailbox
// fails its own liveness probe — naming the loop — while healthy loops
// keep answering, and the probe recovers once the loop drains.
func TestPingLoopReportsStalledLoop(t *testing.T) {
	h := &partRecorder{}
	ra, err := Start(Config{ID: "a", Handler: h, Loops: 2, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	if ra.Loops() != 2 {
		t.Fatalf("Loops() = %d, want 2", ra.Loops())
	}

	started := make(chan struct{})
	block := make(chan struct{})
	ra.DoAsyncOn(1, func() { wedgeLoop(started, block) })
	<-started
	// The loop goroutine is wedged; now saturate its mailbox so the
	// probe fails at the accept phase, not the execute phase.
	for {
		select {
		case ra.loops[1].mailbox <- func() {}:
			continue
		default:
		}
		break
	}
	err1 := ra.PingLoop(1, 100*time.Millisecond)
	if err1 == nil {
		t.Fatal("PingLoop(1) succeeded on a wedged loop with a full mailbox")
	}
	if !strings.Contains(err1.Error(), "loop 1") {
		t.Errorf("PingLoop(1) error %q does not name the loop", err1)
	}
	if err := ra.PingLoop(0, time.Second); err != nil {
		t.Errorf("PingLoop(0) on a healthy loop: %v", err)
	}
	if err := ra.Ping(time.Second); err != nil {
		t.Errorf("Ping (loop 0) on a healthy loop: %v", err)
	}
	close(block)
	if !waitFor(t, 5*time.Second, func() bool { return ra.PingLoop(1, time.Second) == nil }) {
		t.Error("PingLoop(1) never recovered after the loop drained")
	}
}

// TestNonPartitionedHandlerClampsLoops: asking for multiple loops with
// a handler that cannot partition must degrade to the classic single
// loop, not fail or misroute.
func TestNonPartitionedHandlerClampsLoops(t *testing.T) {
	a := &echo{}
	ra, err := Start(Config{ID: "a", Handler: a, Loops: 8, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	if ra.Loops() != 1 {
		t.Fatalf("Loops() = %d, want clamp to 1 for a non-partitioned handler", ra.Loops())
	}
	if err := ra.Ping(time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestMultiLoopDiskRecovery: every loop writes through its own store
// lane (wal engine), the runtime is closed, and a fresh incarnation
// over the same directory must read every loop's keys back — including
// tombstones — whatever loop count either incarnation runs.
func TestMultiLoopDiskRecovery(t *testing.T) {
	loops := testLoops()
	dir := t.TempDir()
	const perLoop = 25

	h := &partRecorder{}
	ra, err := Start(Config{ID: "a", Handler: h, Loops: loops, DiskDir: dir, Store: "wal", Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	n := ra.Loops()
	var pending sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		ra.DoOn(i, func() {
			d := h.partition(i).env.Disk().(node.BatchDisk)
			for k := 0; k < perLoop; k++ {
				key := fmt.Sprintf("rec/%d/%03d", i, k)
				if k%2 == 0 {
					if err := d.Write(key, []byte(key)); err != nil {
						t.Errorf("loop %d write: %v", i, err)
					}
				} else {
					pending.Add(1)
					d.WriteAsync(key, []byte(key), func(err error) {
						if err != nil {
							t.Errorf("loop %d async write: %v", i, err)
						}
						pending.Done()
					})
				}
			}
			// A tombstone per loop: deletes must recover too.
			if err := d.Write(fmt.Sprintf("rec/%d/doomed", i), []byte("x")); err != nil {
				t.Errorf("loop %d write doomed: %v", i, err)
			}
			if err := d.Delete(fmt.Sprintf("rec/%d/doomed", i)); err != nil {
				t.Errorf("loop %d delete: %v", i, err)
			}
		})
	}
	pending.Wait()
	// Read-your-writes within a lane before any commit barrier.
	for i := 0; i < n; i++ {
		i := i
		ra.DoOn(i, func() {
			d := h.partition(i).env.Disk()
			key := fmt.Sprintf("rec/%d/000", i)
			if v, ok := d.Read(key); !ok || string(v) != key {
				t.Errorf("loop %d read-your-writes: %q, %v", i, v, ok)
			}
			if got := len(d.Keys(fmt.Sprintf("rec/%d/", i))); got != perLoop {
				t.Errorf("loop %d Keys = %d, want %d", i, got, perLoop)
			}
		})
	}
	ra.Close()

	h2 := &partRecorder{}
	rb, err := Start(Config{ID: "a", Handler: h2, Loops: loops, DiskDir: dir, Store: "wal", Logf: quietLogf})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer rb.Close()
	rb.Do(func() {
		d := h2.partition(0).env.Disk()
		for i := 0; i < n; i++ {
			keys := d.Keys(fmt.Sprintf("rec/%d/", i))
			if len(keys) != perLoop {
				t.Errorf("recovered %d keys for loop %d, want %d", len(keys), i, perLoop)
			}
			if _, ok := d.Read(fmt.Sprintf("rec/%d/doomed", i)); ok {
				t.Errorf("loop %d tombstone resurrected after recovery", i)
			}
			for k := 0; k < perLoop; k++ {
				key := fmt.Sprintf("rec/%d/%03d", i, k)
				if v, ok := d.Read(key); !ok || string(v) != key {
					t.Errorf("recovered %s = %q, %v", key, v, ok)
				}
			}
		}
	})
}
