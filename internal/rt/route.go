package rt

// Message-to-loop routing for the multi-core runtime.
//
// Session-scoped traffic is pinned: any message carrying a (user,
// session) pair — the whole client protocol plus the per-task
// server/coordinator interactions — is delivered to the loop owning
// that session under shard.LoopMap, so one session's state machine
// never migrates between loops.
//
// Node-scoped traffic from servers (Heartbeat, ServerSync) is
// broadcast to every loop: a server's capacity is a node-level
// resource every partition may assign against, and its sync list can
// reference sessions owned by any loop. Each partition answers for the
// tasks it owns and conservatively asks to resend the rest, which
// converges exactly like duplicated delivery does elsewhere in the
// protocol (at-least-once).
//
// Coordinator-to-coordinator traffic (replication, shard sync, work
// stealing, ring heartbeats) is loop-symmetric: when a multi-loop node
// sends, every outbound frame's From carries a "\x1f<loop>" suffix,
// and the receiving runtime routes tagged traffic without a session to
// the same loop index, so partition j of node A converses with
// partition j of node B. Ring members should therefore run the same
// -loops value; a single-loop peer (or any pre-multi-core build) never
// tags, and its traffic lands on loop 0 — byte-for-byte the wire
// format -loops=1 speaks today.

import (
	"strings"

	"rpcv/internal/proto"
)

// loopTagSep separates the node ID from the originating loop index in
// a tagged From. 0x1f (ASCII unit separator) cannot appear in sane
// node IDs and keeps the tag out of every operator-facing namespace.
const loopTagSep = "\x1f"

// taggedFrom returns the wire From for a message leaving loopIdx. A
// single-loop runtime never tags — its wire bytes are exactly the
// pre-multi-core format.
func (r *Runtime) taggedFrom(loopIdx int) proto.NodeID {
	return r.fromIDs[loopIdx]
}

// splitLoopTag strips a "\x1f<loop>" suffix from a received From,
// returning the bare node ID, the originating loop, and whether a tag
// was present.
func splitLoopTag(from proto.NodeID) (proto.NodeID, int, bool) {
	s := string(from)
	i := strings.LastIndex(s, loopTagSep)
	if i < 0 {
		return from, 0, false
	}
	tag := s[i+len(loopTagSep):]
	n := 0
	if tag == "" {
		return from, 0, false
	}
	for _, c := range tag {
		if c < '0' || c > '9' {
			return from, 0, false
		}
		n = n*10 + int(c-'0')
	}
	return proto.NodeID(s[:i]), n, true
}

// sessionOf extracts the session a message is scoped to, when it has
// one. Messages without a session are node-scoped (heartbeats, syncs,
// replication, shard control, stealing).
func sessionOf(msg proto.Message) (proto.UserID, proto.SessionID, bool) {
	switch m := msg.(type) {
	case *proto.Submit:
		return m.Call.User, m.Call.Session, true
	case *proto.SubmitAck:
		return m.Call.User, m.Call.Session, true
	case *proto.Poll:
		return m.User, m.Session, true
	case *proto.Results:
		return m.User, m.Session, true
	case *proto.SyncRequest:
		return m.User, m.Session, true
	case *proto.SyncReply:
		return m.User, m.Session, true
	case *proto.FetchResult:
		return m.User, m.Session, true
	case *proto.FetchReply:
		return m.Call.User, m.Call.Session, true
	case *proto.TaskResult:
		return m.Task.Call.User, m.Task.Call.Session, true
	case *proto.TaskResultAck:
		return m.Task.Call.User, m.Task.Call.Session, true
	case *proto.TaskCancel:
		return m.Task.Call.User, m.Task.Call.Session, true
	case *proto.ShardRedirect:
		return m.User, m.Session, true
	}
	return "", 0, false
}

// broadcastToLoops reports whether a node-scoped message must reach
// every loop: server heartbeats (capacity is node-level; every
// partition may want to assign work against it) and server syncs
// (the task list can span sessions owned by different loops; each
// partition reconciles the tasks it owns).
func broadcastToLoops(msg proto.Message) bool {
	switch m := msg.(type) {
	case *proto.Heartbeat:
		return m.Role == proto.RoleServer
	case *proto.ServerSync:
		return true
	}
	return false
}

// deliver routes one received message onto its loop(s). Called from
// connection readers (external producers): mailbox sends may block
// briefly when a loop falls behind, which is the transport's
// backpressure.
func (r *Runtime) deliver(from proto.NodeID, msg proto.Message) {
	base, fromLoop, tagged := splitLoopTag(from)
	if len(r.loops) == 1 {
		r.loops[0].receive(base, msg)
		return
	}
	if user, session, ok := sessionOf(msg); ok {
		r.loops[r.loopMap.Owner(user, session)].receive(base, msg)
		return
	}
	if broadcastToLoops(msg) {
		for _, l := range r.loops {
			l.receive(base, msg)
		}
		return
	}
	if tagged {
		r.loops[fromLoop%len(r.loops)].receive(base, msg)
		return
	}
	r.loops[0].receive(base, msg)
}

// receive schedules the handler's Receive on this loop.
func (l *loop) receive(from proto.NodeID, msg proto.Message) {
	select {
	case l.mailbox <- func() { l.handler.Receive(from, msg) }:
	case <-l.r.quit:
	}
}
