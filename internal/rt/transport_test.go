package rt

import (
	"encoding/gob"
	"net"
	"runtime"
	"testing"
	"time"

	"rpcv/internal/proto"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

// TestPooledDeliveryAndCoalescing sends a burst through the pooled
// transport: every message must arrive, and the burst must ride far
// fewer connection flushes than messages (the coalescing the legacy
// transport cannot do, where flushes == messages by construction).
func TestPooledDeliveryAndCoalescing(t *testing.T) {
	const burst = 64
	a := &echo{}
	b := &echo{}
	ra, err := Start(Config{ID: "a", ListenAddr: "127.0.0.1:0", Handler: a, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	rb, err := Start(Config{ID: "b", ListenAddr: "127.0.0.1:0", Handler: b, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	ra.SetPeer("b", rb.Addr())

	ra.Do(func() {
		for i := 0; i < burst; i++ {
			a.env.Send("b", &proto.Poll{User: "u", Session: 1})
		}
	})
	if !waitFor(t, 5*time.Second, func() bool { return b.count() == burst }) {
		t.Fatalf("delivered %d/%d messages", b.count(), burst)
	}
	st := ra.TransportStats()
	if st.Sent != burst || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want %d sent, 0 dropped", st, burst)
	}
	if st.Flushes >= st.Sent {
		t.Fatalf("no coalescing: %d flushes for %d envelopes", st.Flushes, st.Sent)
	}
}

// TestSendQueueBoundedNoGoroutineLeak floods a sender whose peer is
// unreachable. The legacy transport spawned one goroutine per message
// (each holding a dial for up to DialTimeout); the pooled transport
// must keep a single sender goroutine and bound the queue by dropping
// the oldest envelopes.
func TestSendQueueBoundedNoGoroutineLeak(t *testing.T) {
	const flood = 500
	a := &echo{}
	ra, err := Start(Config{
		ID: "a", Handler: a, Logf: quietLogf,
		QueueDepth: 8,
		// A bound-but-unserved port: dials fail fast with refused.
		Directory: Directory{"ghost": "127.0.0.1:1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()

	before := runtime.NumGoroutine()
	ra.Do(func() {
		for i := 0; i < flood; i++ {
			a.env.Send("ghost", &proto.Heartbeat{From: "a"})
		}
	})
	if after := runtime.NumGoroutine(); after > before+20 {
		t.Fatalf("goroutines grew %d -> %d during flood (per-message spawn?)", before, after)
	}
	// Every envelope is eventually dropped (overflow or failed dial),
	// none can be in flight, and the queue stays at depth.
	if !waitFor(t, 5*time.Second, func() bool {
		st := ra.TransportStats()
		return st.Dropped+8 >= flood
	}) {
		t.Fatalf("dropped = %d, want >= %d", ra.TransportStats().Dropped, flood-8)
	}
	if st := ra.TransportStats(); st.Sent != 0 {
		t.Fatalf("sent %d envelopes to an unreachable peer", st.Sent)
	}
}

// TestIdleTimeoutRetiresSenderAndRevives checks the pool returns to
// the paper's connection-less behaviour for quiet peers: after
// IdleTimeout the sender goroutine and its connection go away, and a
// later send transparently builds fresh ones.
func TestIdleTimeoutRetiresSenderAndRevives(t *testing.T) {
	a := &echo{}
	b := &echo{}
	ra, err := Start(Config{ID: "a", Handler: a, Logf: quietLogf, IdleTimeout: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	rb, err := Start(Config{ID: "b", ListenAddr: "127.0.0.1:0", Handler: b, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	ra.SetPeer("b", rb.Addr())

	senderCount := func() int {
		ra.sendMu.Lock()
		defer ra.sendMu.Unlock()
		return len(ra.senders)
	}

	ra.Do(func() { a.env.Send("b", &proto.Poll{User: "u", Session: 1}) })
	if !waitFor(t, 2*time.Second, func() bool { return b.count() == 1 }) {
		t.Fatal("first message never arrived")
	}
	if senderCount() != 1 {
		t.Fatalf("senders = %d, want 1", senderCount())
	}
	if !waitFor(t, 2*time.Second, func() bool { return senderCount() == 0 }) {
		t.Fatal("idle sender never retired")
	}
	ra.Do(func() { a.env.Send("b", &proto.Poll{User: "u", Session: 2}) })
	if !waitFor(t, 2*time.Second, func() bool { return b.count() == 2 }) {
		t.Fatal("send after idle retirement never arrived")
	}
}

// TestSetPeerRedirectsLiveSender checks a pooled sender follows
// directory updates: after SetPeer moves a peer, traffic must land at
// the new endpoint even though the connection to the old one is still
// perfectly alive (the legacy transport re-resolved on every send; a
// live-but-wrong connection must not pin messages to a stale address).
func TestSetPeerRedirectsLiveSender(t *testing.T) {
	a := &echo{}
	old := &echo{}
	cur := &echo{}
	ra, err := Start(Config{ID: "a", Handler: a, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	rOld, err := Start(Config{ID: "b", ListenAddr: "127.0.0.1:0", Handler: old, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer rOld.Close()
	rCur, err := Start(Config{ID: "b", ListenAddr: "127.0.0.1:0", Handler: cur, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer rCur.Close()

	ra.SetPeer("b", rOld.Addr())
	ra.Do(func() { a.env.Send("b", &proto.Poll{User: "u", Session: 1}) })
	if !waitFor(t, 5*time.Second, func() bool { return old.count() == 1 }) {
		t.Fatal("message never reached the original endpoint")
	}
	ra.SetPeer("b", rCur.Addr())
	ra.Do(func() { a.env.Send("b", &proto.Poll{User: "u", Session: 2}) })
	if !waitFor(t, 5*time.Second, func() bool { return cur.count() == 1 }) {
		t.Fatalf("message pinned to the stale endpoint (old=%d cur=%d)", old.count(), cur.count())
	}
}

// TestLegacyTransportInterop proves wire compatibility both ways: a
// LegacyTransport sender delivers to a pooled read side, and a raw
// one-envelope-then-close connection (what a pre-pooling binary
// writes) is accepted as the shortest envelope stream.
func TestLegacyTransportInterop(t *testing.T) {
	b := &echo{}
	rb, err := Start(Config{ID: "b", ListenAddr: "127.0.0.1:0", Handler: b, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()

	a := &echo{}
	ra, err := Start(Config{ID: "a", Handler: a, Logf: quietLogf, LegacyTransport: true,
		Directory: Directory{"b": rb.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()

	ra.Do(func() { a.env.Send("b", &proto.Poll{User: "u", Session: 1}) })
	if !waitFor(t, 5*time.Second, func() bool { return b.count() == 1 }) {
		t.Fatal("legacy send never arrived at pooled reader")
	}
	if st := ra.TransportStats(); st.Sent != 1 || st.Flushes != 1 {
		t.Fatalf("legacy stats = %+v, want one envelope per flush", st)
	}

	// Raw legacy wire: dial, write exactly one envelope, close.
	conn, err := net.Dial("tcp", rb.Addr())
	if err != nil {
		t.Fatal(err)
	}
	env := envelope{From: "raw", Msg: &proto.Poll{User: "u", Session: 9}}
	if err := gob.NewEncoder(conn).Encode(&env); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if !waitFor(t, 5*time.Second, func() bool { return b.count() == 2 }) {
		t.Fatal("raw one-envelope connection never decoded")
	}
}

// TestMaxInboundConnsSheds verifies accept-side shedding: connections
// beyond the cap are closed immediately and counted, instead of each
// holding a file descriptor until a read deadline expires.
func TestMaxInboundConnsSheds(t *testing.T) {
	b := &echo{}
	rb, err := Start(Config{ID: "b", ListenAddr: "127.0.0.1:0", Handler: b, Logf: quietLogf,
		MaxInboundConns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()

	var held []net.Conn
	defer func() {
		for _, c := range held {
			c.Close()
		}
	}()
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", rb.Addr())
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, c)
	}
	// The two slow conns must be registered before the third arrives.
	if !waitFor(t, 2*time.Second, func() bool { return rb.inbound.Load() == 2 }) {
		t.Fatalf("inbound = %d, want 2", rb.inbound.Load())
	}

	over, err := net.Dial("tcp", rb.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	_ = over.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := over.Read(make([]byte, 1)); err == nil {
		t.Fatal("over-cap connection was served")
	}
	if st := rb.TransportStats(); st.Sheds != 1 {
		t.Fatalf("sheds = %d, want 1", st.Sheds)
	}
}
