package store

import (
	"sort"
	"strings"
	"sync"
)

// Memory is a volatile in-memory store (tests, throwaway clients).
// Every operation is immediately "durable" for as long as the process
// lives.
type Memory struct {
	mu   sync.Mutex
	data map[string][]byte
}

var _ Store = (*Memory)(nil)

// NewMemory returns an empty volatile store.
func NewMemory() *Memory { return &Memory{data: make(map[string][]byte)} }

// Write implements Store.
func (m *Memory) Write(key string, value []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data[key] = append([]byte(nil), value...)
	return nil
}

// WriteAsync implements Store: the write completes synchronously.
func (m *Memory) WriteAsync(key string, value []byte, done func(error)) {
	err := m.Write(key, value)
	if done != nil {
		done(err)
	}
}

// Read implements Store.
func (m *Memory) Read(key string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.data[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Delete implements Store.
func (m *Memory) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.data, key)
	return nil
}

// Keys implements Store.
func (m *Memory) Keys(prefix string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var keys []string
	for k := range m.data {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Sync implements Store (nothing is ever pending).
func (m *Memory) Sync() error { return nil }

// Close implements Store.
func (m *Memory) Close() error { return nil }

// Len returns the number of stored keys (test helper).
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.data)
}
