package store

import (
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Files maps each key to one file whose name is the hex encoding of
// the key (keys contain '/' and other filesystem-hostile characters).
// Writes are synced: the store is the message log, and pessimistic
// logging is only pessimistic if the bytes actually hit the platter.
//
// Durability is strictly per-operation — every Write costs a file
// fsync plus a parent-directory fsync, every Delete a directory fsync
// — which is what the wal engine's group commit amortizes away.
type Files struct {
	dir string
	mu  sync.Mutex
}

var _ Store = (*Files)(nil)

// OpenFiles opens (creating if needed) a files-engine store rooted at
// dir. It refuses a directory holding wal-engine data: reinterpreting
// segments as an empty key set would look like data loss to a
// recovering node.
func OpenFiles(dir string) (*Files, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := refuseForeign(dir, "files", isWALFile); err != nil {
		return nil, err
	}
	return &Files{dir: dir}, nil
}

// isWALFile recognizes the wal engine's on-disk artifacts.
func isWALFile(name string) bool {
	return (strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix)) ||
		(strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix))
}

// isFilesFile recognizes the files engine's per-key layout.
func isFilesFile(name string) bool {
	if !strings.HasSuffix(name, ".log") {
		return false
	}
	_, err := hex.DecodeString(strings.TrimSuffix(name, ".log"))
	return err == nil
}

// refuseForeign errors when dir contains files matched by foreign —
// another engine's data that opening under this engine would shadow.
func refuseForeign(dir, engine string, foreign func(name string) bool) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if foreign(e.Name()) {
			return fmt.Errorf("store: %s holds another engine's data (%s); refusing to open it as %q", dir, e.Name(), engine)
		}
	}
	return nil
}

func (d *Files) path(key string) string {
	return filepath.Join(d.dir, hex.EncodeToString([]byte(key))+".log")
}

// Write implements Store.
func (d *Files) Write(key string, value []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	tmp := d.path(key) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(value); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, d.path(key)); err != nil {
		return err
	}
	// The rename is only durable once the directory entry itself is on
	// disk: a crash between the rename and the directory fsync can
	// lose the key or resurrect the old value, and pessimistic logging
	// is only pessimistic if it never depends on that luck.
	return syncDir(d.dir)
}

// WriteAsync implements Store: the files engine has no batching, so
// the write completes synchronously at full per-operation cost.
func (d *Files) WriteAsync(key string, value []byte, done func(error)) {
	err := d.Write(key, value)
	if done != nil {
		done(err)
	}
}

// syncDir fsyncs a directory, making a preceding rename inside it
// crash-durable. A variable so tests can observe the calls.
var syncDir = func(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// Read implements Store.
func (d *Files) Read(key string) ([]byte, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Delete implements Store.
func (d *Files) Delete(key string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := os.Remove(d.path(key)); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil // deleting an absent key is a no-op
		}
		return err
	}
	// Same durability rule as Write: an unsynced directory can
	// resurrect the deleted key after a crash, replaying a record the
	// log already truncated.
	return syncDir(d.dir)
}

// Keys implements Store.
func (d *Files) Keys(prefix string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".log") {
			continue
		}
		raw, err := hex.DecodeString(strings.TrimSuffix(name, ".log"))
		if err != nil {
			continue
		}
		key := string(raw)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys
}

// Sync implements Store (every operation is already durable on return).
func (d *Files) Sync() error { return nil }

// Close implements Store.
func (d *Files) Close() error { return nil }
