package store

import (
	"fmt"
	"sync"
	"testing"
)

// TestLaneReadYourWrites: a lane observes its own staged writes and
// deletes immediately, before any group commit, and Keys merges the
// overlay with the committed index.
func TestLaneReadYourWrites(t *testing.T) {
	w := openTestWAL(t, t.TempDir(), WALOptions{})
	if err := w.Write("shared/committed", []byte("base")); err != nil {
		t.Fatal(err)
	}
	lane := w.Lane()

	var pending sync.WaitGroup
	pending.Add(1)
	lane.WriteAsync("shared/staged", []byte("mine"), func(err error) {
		if err != nil {
			t.Errorf("async write: %v", err)
		}
		pending.Done()
	})
	if v, ok := lane.Read("shared/staged"); !ok || string(v) != "mine" {
		t.Fatalf("staged read = %q, %v; want read-your-writes before commit", v, ok)
	}
	if v, ok := lane.Read("shared/committed"); !ok || string(v) != "base" {
		t.Fatalf("committed read through lane = %q, %v", v, ok)
	}
	keys := lane.Keys("shared/")
	if len(keys) != 2 || keys[0] != "shared/committed" || keys[1] != "shared/staged" {
		t.Fatalf("Keys = %v, want staged+committed merged sorted", keys)
	}

	// A staged delete shadows the committed value immediately.
	if err := lane.Delete("shared/committed"); err != nil {
		t.Fatal(err)
	}
	if _, ok := lane.Read("shared/committed"); ok {
		t.Fatal("staged tombstone did not shadow the committed value")
	}
	if keys := lane.Keys("shared/"); len(keys) != 1 || keys[0] != "shared/staged" {
		t.Fatalf("Keys after staged delete = %v", keys)
	}
	pending.Wait()
	// After the commit the engine itself must agree with the lane.
	if err := lane.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Read("shared/committed"); ok {
		t.Fatal("delete did not commit engine-wide")
	}
	if v, ok := w.Read("shared/staged"); !ok || string(v) != "mine" {
		t.Fatalf("engine read after commit = %q, %v", v, ok)
	}
}

// TestLaneSyncBarrier: Sync on a lane returns only when everything the
// lane staged is durable in the engine.
func TestLaneSyncBarrier(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, WALOptions{})
	lane := w.Lane()
	for i := 0; i < 20; i++ {
		lane.WriteAsync(fmt.Sprintf("k/%02d", i), []byte("v"), nil)
	}
	if err := lane.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// A fresh engine over the directory proves durability, not caching.
	w2 := openTestWAL(t, dir, WALOptions{})
	if got := len(w2.Keys("k/")); got != 20 {
		t.Fatalf("recovered %d keys, want 20", got)
	}
}

// TestLanesConcurrent: many lanes staging concurrently (the multi-loop
// write pattern) must neither race nor lose writes — every lane's keys
// recover after a reopen. Run under -race this is the lane-locking
// regression test.
func TestLanesConcurrent(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, WALOptions{})
	const lanes = 4
	const perLane = 200
	var wg sync.WaitGroup
	for l := 0; l < lanes; l++ {
		lane := w.Lane()
		wg.Add(1)
		go func(l int, lane Store) {
			defer wg.Done()
			for i := 0; i < perLane; i++ {
				key := fmt.Sprintf("lane/%d/%03d", l, i)
				if i%3 == 0 {
					if err := lane.Write(key, []byte(key)); err != nil {
						t.Errorf("lane %d write: %v", l, err)
					}
				} else {
					lane.WriteAsync(key, []byte(key), nil)
				}
				if _, ok := lane.Read(key); !ok {
					t.Errorf("lane %d lost read-your-writes on %s", l, key)
				}
			}
			if err := lane.Sync(); err != nil {
				t.Errorf("lane %d sync: %v", l, err)
			}
		}(l, lane)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := openTestWAL(t, dir, WALOptions{})
	for l := 0; l < lanes; l++ {
		if got := len(w2.Keys(fmt.Sprintf("lane/%d/", l))); got != perLane {
			t.Errorf("lane %d recovered %d keys, want %d", l, got, perLane)
		}
	}
}

// TestLaneLastWriteWinsAcrossLanes: two lanes writing the same key
// both commit; the engine ends with one of the two values (the batch
// order decides), never a torn or missing record.
func TestLaneLastWriteWinsAcrossLanes(t *testing.T) {
	w := openTestWAL(t, t.TempDir(), WALOptions{})
	a, b := w.Lane(), w.Lane()
	if err := a.Write("k", []byte("from-a")); err != nil {
		t.Fatal(err)
	}
	if err := b.Write("k", []byte("from-b")); err != nil {
		t.Fatal(err)
	}
	v, ok := w.Read("k")
	if !ok || (string(v) != "from-a" && string(v) != "from-b") {
		t.Fatalf("engine read = %q, %v", v, ok)
	}
}

// TestLaneFailsFastAfterEngineClose: a lane outliving its engine must
// fail writes immediately instead of hanging a handler on a commit
// that can never happen.
func TestLaneFailsFastAfterEngineClose(t *testing.T) {
	w := openTestWAL(t, t.TempDir(), WALOptions{})
	lane := w.Lane()
	if err := lane.Write("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lane.Write("k2", []byte("v")); err == nil {
		t.Fatal("write on a lane of a closed engine succeeded")
	}
	done := make(chan error, 1)
	lane.WriteAsync("k3", []byte("v"), func(err error) { done <- err })
	if err := <-done; err == nil {
		t.Fatal("async write on a lane of a closed engine completed without error")
	}
	// Lane on a closed engine: opening one must also fail fast.
	dead := w.Lane()
	if err := dead.Write("k4", []byte("v")); err == nil {
		t.Fatal("lane opened after engine close accepted a write")
	}
}

// TestLaneCloseFlushes: closing a lane flushes its staged writes but
// leaves the engine usable.
func TestLaneCloseFlushes(t *testing.T) {
	w := openTestWAL(t, t.TempDir(), WALOptions{})
	lane := w.Lane()
	lane.WriteAsync("k", []byte("v"), nil)
	if err := lane.Close(); err != nil {
		t.Fatal(err)
	}
	if v, ok := w.Read("k"); !ok || string(v) != "v" {
		t.Fatalf("engine read after lane close = %q, %v", v, ok)
	}
	if err := w.Write("k2", []byte("v2")); err != nil {
		t.Fatalf("engine write after lane close: %v", err)
	}
}
