package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// On-disk layout of the wal engine:
//
//	wal-00000001.seg   segment: a stream of CRC-framed records
//	wal-00000002.seg   (the highest-numbered segment is active)
//	snap-00000001.snap snapshot covering every segment id <= 1
//
// Record framing (little-endian):
//
//	u32 crc    IEEE CRC-32 over everything after this field
//	u8  kind   1 = put, 2 = delete
//	u32 keyLen
//	u32 valLen (0 for delete)
//	key bytes
//	val bytes
//
// A snapshot file is magic "RPCVSNP1", u32 count, count × (u32 keyLen,
// key, u32 valLen, val), u32 CRC-32 over everything after the magic.
// Snapshots are written to a .tmp file, fsynced and renamed, so a
// half-written snapshot never shadows an older valid one.
const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snap-"
	snapSuffix = ".snap"

	recPut    = 1
	recDelete = 2

	// maxRecordSize bounds a single key+value against corrupt length
	// fields turning into giant allocations during replay.
	maxRecordSize = 1 << 30
)

var snapMagic = [8]byte{'R', 'P', 'C', 'V', 'S', 'N', 'P', '1'}

// WALOptions tunes the wal engine. The zero value is production-sized;
// tests shrink the knobs to exercise rotation and snapshots quickly.
type WALOptions struct {
	// SegmentBytes rotates the active segment once it exceeds this
	// size. Default 4 MiB.
	SegmentBytes int64
	// SnapshotSegments takes a snapshot (and compacts away covered
	// segments) once this many sealed segments accumulate beyond the
	// last snapshot. Default 4 — recovery replays at most about
	// SnapshotSegments×SegmentBytes of log, the "snapshot interval".
	SnapshotSegments int
	// Logf receives recovery and compaction notices; nil discards.
	Logf func(format string, args ...any)
}

func (o *WALOptions) applyDefaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SnapshotSegments <= 0 {
		o.SnapshotSegments = 4
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// walOp is one staged operation awaiting the committer.
type walOp struct {
	kind byte // recPut, recDelete, or 0 for a Sync barrier
	key  string
	val  []byte
	done func(error)
	seq  uint64 // lane sequence (lane-staged ops only); guards overlay clearing
}

// WAL is the group-commit write-ahead-log engine.
//
// Writes stage the operation, update the in-memory index (so reads
// observe them immediately) and wake the committer goroutine, which
// drains everything staged, appends it to the active segment in one
// write, fsyncs once, and only then completes the operations. Callers
// therefore pay one fsync per *batch*, not per operation — concurrent
// loggers share the disk's access floor, which is the engine-level fix
// for the paper's fig-4 blocking-pessimistic overhead.
type WAL struct {
	dir string
	opt WALOptions

	mu     sync.Mutex
	index  map[string][]byte
	staged []walOp
	lanes  []*walLane // per-event-loop staging lanes (see lane.go)
	closed bool
	broken error // sticky fatal commit error; fails all later ops

	seg     *os.File // active segment (committer-owned after Open)
	segID   uint64
	segSize int64
	snapID  uint64 // segments <= snapID are covered by the snapshot

	snapshotting bool
	snapWG       sync.WaitGroup

	kick chan struct{}
	quit chan struct{}
	wg   sync.WaitGroup

	// stats, guarded by mu.
	commits         uint64 // fsync batches
	committedOps    uint64 // operations made durable
	replayedRecords uint64 // records replayed by Open (after snapshot)
	snapshots       uint64 // snapshots taken since Open
}

var _ Store = (*WAL)(nil)

// WALStats reports durability and recovery counters.
type WALStats struct {
	// Commits is the number of fsync batches since Open; CommittedOps
	// the operations they covered. CommittedOps/Commits is the group-
	// commit amortization factor.
	Commits      uint64
	CommittedOps uint64
	// ReplayedRecords counts log records Open replayed on top of the
	// snapshot — the recovery work a restart paid.
	ReplayedRecords uint64
	// Snapshots counts snapshots taken since Open.
	Snapshots uint64
	// Segments is the number of live log segments not yet covered by a
	// snapshot — the replay work a crash right now would pay.
	Segments uint64
}

// Stats returns a snapshot of the counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WALStats{
		Commits:         w.commits,
		CommittedOps:    w.committedOps,
		ReplayedRecords: w.replayedRecords,
		Snapshots:       w.snapshots,
		Segments:        w.segID - w.snapID,
	}
}

// OpenWAL opens (creating if needed) a wal store rooted at dir,
// rebuilding the in-memory index from the newest valid snapshot plus
// every later segment. A torn final record — the signature of a crash
// mid-commit — is truncated away; corruption anywhere else fails Open.
// It refuses a directory holding files-engine data.
func OpenWAL(dir string, opt WALOptions) (*WAL, error) {
	opt.applyDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := refuseForeign(dir, "wal", isFilesFile); err != nil {
		return nil, err
	}
	w := &WAL{
		dir:   dir,
		opt:   opt,
		index: make(map[string][]byte),
		kick:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
	}
	if err := w.recover(); err != nil {
		return nil, err
	}
	w.wg.Add(1)
	go w.committer()
	return w, nil
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

// recover rebuilds index, segID and snapID from the directory.
func (w *WAL) recover() error {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return err
	}
	var segIDs, snapIDs []uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// Leftover of an interrupted snapshot; never renamed, so
			// never authoritative.
			_ = os.Remove(filepath.Join(w.dir, name))
		case strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix):
			if id, ok := parseSeqName(name, segPrefix, segSuffix); ok {
				segIDs = append(segIDs, id)
			}
		case strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix):
			if id, ok := parseSeqName(name, snapPrefix, snapSuffix); ok {
				snapIDs = append(snapIDs, id)
			}
		}
	}
	sort.Slice(segIDs, func(i, j int) bool { return segIDs[i] < segIDs[j] })
	sort.Slice(snapIDs, func(i, j int) bool { return snapIDs[i] > snapIDs[j] }) // newest first

	// Load the newest snapshot that validates; older ones are only
	// kept until compaction confirms their successor, so walking down
	// the list tolerates a crash between rename and cleanup. If
	// snapshots exist but NONE validates, refuse to open: the covered
	// segments are compacted away, so proceeding would present a
	// partial (or empty) store as if it were complete — silent data
	// loss, the exact failure refuseForeign guards against.
	loaded := len(snapIDs) == 0
	for _, id := range snapIDs {
		idx, err := loadSnapshot(w.snapPath(id))
		if err != nil {
			w.opt.Logf("store(wal): snapshot %d unreadable (%v), trying older", id, err)
			continue
		}
		w.index = idx
		w.snapID = id
		loaded = true
		break
	}
	if !loaded {
		return fmt.Errorf("store: wal %s: %d snapshot file(s) present but none readable; refusing to recover partial state", w.dir, len(snapIDs))
	}

	// Replay every segment after the snapshot, oldest first. Only the
	// final record of the final segment may be torn.
	for i, id := range segIDs {
		if id <= w.snapID {
			// Covered by the snapshot; compaction was interrupted
			// before removing it. Finish the job.
			_ = os.Remove(w.segPath(id))
			continue
		}
		last := i == len(segIDs)-1
		n, err := w.replaySegment(id, last)
		if err != nil {
			return err
		}
		w.replayedRecords += uint64(n)
	}

	// Reopen the highest segment for appending, or start a fresh one.
	if n := len(segIDs); n > 0 && segIDs[n-1] > w.snapID {
		w.segID = segIDs[n-1]
		f, err := os.OpenFile(w.segPath(w.segID), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return err
		}
		w.seg, w.segSize = f, st.Size()
		return nil
	}
	return w.openSegmentLocked(w.snapID + 1)
}

// replaySegment applies one segment's records to the index. When
// tolerateTail is set (final segment only), a torn or corrupt tail is
// truncated at the last good record instead of failing recovery: a
// crash between write and fsync legitimately leaves one.
func (w *WAL) replaySegment(id uint64, tolerateTail bool) (int, error) {
	path := w.segPath(id)
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	applied, off := 0, 0
	for off < len(data) {
		kind, key, val, n, err := decodeRecord(data[off:])
		if err != nil {
			if !tolerateTail {
				return applied, fmt.Errorf("store: wal segment %s corrupt at offset %d: %w", path, off, err)
			}
			w.opt.Logf("store(wal): truncating torn tail of %s at offset %d (%v)", path, off, err)
			if terr := os.Truncate(path, int64(off)); terr != nil {
				return applied, terr
			}
			if terr := syncFile(path); terr != nil {
				return applied, terr
			}
			break
		}
		switch kind {
		case recPut:
			w.index[key] = val
		case recDelete:
			delete(w.index, key)
		}
		off += n
		applied++
	}
	return applied, nil
}

// ---------------------------------------------------------------------
// Store interface
// ---------------------------------------------------------------------

// Write implements Store: it stages the put and blocks until the batch
// holding it is fsynced.
func (w *WAL) Write(key string, value []byte) error {
	ch := make(chan error, 1)
	w.stage(walOp{kind: recPut, key: key, val: append([]byte(nil), value...),
		done: func(err error) { ch <- err }})
	return <-ch
}

// WriteAsync implements Store: it stages the put and returns; done
// runs (possibly on the committer goroutine) after the batch fsync.
func (w *WAL) WriteAsync(key string, value []byte, done func(error)) {
	w.stage(walOp{kind: recPut, key: key, val: append([]byte(nil), value...), done: done})
}

// Delete implements Store: durable like Write (a delete record is
// appended and fsynced), so a crash cannot resurrect the key.
func (w *WAL) Delete(key string) error {
	ch := make(chan error, 1)
	w.stage(walOp{kind: recDelete, key: key, done: func(err error) { ch <- err }})
	return <-ch
}

// Read implements Store, serving from the in-memory index: staged
// writes are visible immediately (read-your-writes), durability is
// what the commit guards.
func (w *WAL) Read(key string) ([]byte, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	v, ok := w.index[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Keys implements Store.
func (w *WAL) Keys(prefix string) []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	var keys []string
	for k := range w.index {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Sync implements Store: it rides a no-op barrier through the commit
// pipeline, returning once everything staged before it is durable.
func (w *WAL) Sync() error {
	ch := make(chan error, 1)
	w.stage(walOp{done: func(err error) { ch <- err }})
	return <-ch
}

// Close implements Store: flushes staged operations, stops the
// committer and releases the active segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.quit)
	w.wg.Wait()     // committer drains the final batch before exiting
	w.snapWG.Wait() // an in-flight snapshot finishes writing
	w.mu.Lock()
	defer w.mu.Unlock()
	var err error
	if w.seg != nil {
		err = w.seg.Close()
		w.seg = nil
	}
	return err
}

// stage queues one operation for the committer, applying it to the
// index immediately.
func (w *WAL) stage(op walOp) {
	w.mu.Lock()
	if w.closed || w.broken != nil {
		err := w.broken
		if err == nil {
			err = errors.New("store: wal closed")
		}
		w.mu.Unlock()
		if op.done != nil {
			op.done(err)
		}
		return
	}
	switch op.kind {
	case recPut:
		w.index[op.key] = op.val
	case recDelete:
		delete(w.index, op.key)
	}
	w.staged = append(w.staged, op)
	w.mu.Unlock()
	w.kickCommitter()
}

// kickCommitter wakes the committer if it is not already signalled.
func (w *WAL) kickCommitter() {
	select {
	case w.kick <- struct{}{}:
	default: // committer already signalled
	}
}

// ---------------------------------------------------------------------
// Committer
// ---------------------------------------------------------------------

func (w *WAL) committer() {
	defer w.wg.Done()
	for {
		select {
		case <-w.kick:
			w.commitBatch(false)
		case <-w.quit:
			// Drain whatever was staged before Close — including every
			// lane, which is retired so late stages fail fast instead
			// of hanging — then stop.
			w.commitBatch(true)
			return
		}
	}
}

// commitBatch drains the staged queue and every lane, appends every
// record in one write, fsyncs once and completes the operations. It
// then rotates and/or snapshots when thresholds are crossed. finalize
// is the engine-close drain: it retires the lanes.
func (w *WAL) commitBatch(finalize bool) {
	w.mu.Lock()
	batch := w.staged
	w.staged = nil
	lanes := append([]*walLane(nil), w.lanes...)
	broken := w.broken
	w.mu.Unlock()

	// Drain the lanes, preserving per-lane order. Lane ops were not
	// applied to the shared index at stage time (lane readers saw them
	// through their overlay), so apply them here — one amortized w.mu
	// hold per batch instead of one per operation — then clear the
	// overlays: between apply and clear a lane read sees the overlay
	// value, which equals the index value, so no window is visible.
	type laneTake struct {
		l   *walLane
		ops []walOp
	}
	var takes []laneTake
	for _, l := range lanes {
		if ops := l.take(finalize); len(ops) > 0 {
			takes = append(takes, laneTake{l, ops})
		}
	}
	if len(takes) > 0 {
		w.mu.Lock()
		for _, t := range takes {
			for _, op := range t.ops {
				switch op.kind {
				case recPut:
					w.index[op.key] = op.val
				case recDelete:
					delete(w.index, op.key)
				}
			}
		}
		w.mu.Unlock()
		for _, t := range takes {
			t.l.clearPending(t.ops)
			batch = append(batch, t.ops...)
		}
	}
	if len(batch) == 0 {
		return
	}
	if broken != nil {
		// Ops staged in the window before a failing commit set the
		// sticky error must fail too: the segment may end in a partial
		// record, and anything appended after it would be truncated
		// away by the next recovery despite a successful fsync.
		for _, op := range batch {
			if op.done != nil {
				op.done(broken)
			}
		}
		return
	}

	var buf []byte
	records := 0
	for _, op := range batch {
		if op.kind == 0 {
			continue // Sync barrier: nothing to append
		}
		buf = appendRecord(buf, op.kind, op.key, op.val)
		records++
	}

	var err error
	if records > 0 {
		if _, werr := w.seg.Write(buf); werr != nil {
			err = werr
		} else if serr := w.seg.Sync(); serr != nil {
			err = serr
		}
	}

	w.mu.Lock()
	if err != nil {
		// A failed append leaves the segment in an unknown state; fail
		// everything after it rather than pretending to be durable.
		w.broken = fmt.Errorf("store: wal commit: %w", err)
		err = w.broken
	} else {
		w.segSize += int64(len(buf))
		w.commits++
		w.committedOps += uint64(records)
	}
	w.mu.Unlock()

	for _, op := range batch {
		if op.done != nil {
			op.done(err)
		}
	}
	if err == nil {
		w.maybeRotate()
	}
}

// maybeRotate seals the active segment once it exceeds SegmentBytes
// and opens the next one; crossing the snapshot threshold then kicks
// off a background snapshot + compaction.
func (w *WAL) maybeRotate() {
	w.mu.Lock()
	if w.segSize < w.opt.SegmentBytes {
		w.mu.Unlock()
		return
	}
	old := w.seg
	if err := w.openSegmentLocked(w.segID + 1); err != nil {
		// Keep appending to the old segment; rotation retries next
		// batch.
		w.seg = old
		w.opt.Logf("store(wal): rotate: %v", err)
		w.mu.Unlock()
		return
	}
	_ = old.Close()
	sealed := w.segID - 1 - w.snapID // sealed segments not yet covered
	due := sealed >= uint64(w.opt.SnapshotSegments) && !w.snapshotting
	var (
		idx  map[string][]byte
		upto uint64
	)
	if due {
		// Freeze the snapshot's view under the lock. The copy may
		// include operations staged but not yet committed; their
		// records land in segments > upto, which replay over the
		// snapshot idempotently, so the combined state is consistent.
		w.snapshotting = true
		upto = w.segID - 1
		idx = make(map[string][]byte, len(w.index))
		for k, v := range w.index {
			idx[k] = v
		}
	}
	w.mu.Unlock()
	if due {
		w.snapWG.Add(1)
		go w.writeSnapshot(idx, upto)
	}
}

// openSegmentLocked creates and opens segment id as the active one.
// Caller holds mu.
func (w *WAL) openSegmentLocked(id uint64) error {
	f, err := os.OpenFile(w.segPath(id), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	// The new segment must itself survive a crash before anything in
	// it matters; syncing the directory here makes its entry durable.
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.seg = f
	w.segID = id
	w.segSize = 0
	return nil
}

// writeSnapshot persists idx as the snapshot covering segments <=
// upto, then compacts: older snapshots and covered segments are
// removed. Runs off the committer so writes continue into newer
// segments while the snapshot streams out.
func (w *WAL) writeSnapshot(idx map[string][]byte, upto uint64) {
	defer w.snapWG.Done()
	defer func() {
		w.mu.Lock()
		w.snapshotting = false
		w.mu.Unlock()
	}()

	path := w.snapPath(upto)
	tmp := path + ".tmp"
	if err := writeSnapshotFile(tmp, idx); err != nil {
		w.opt.Logf("store(wal): snapshot %d: %v", upto, err)
		_ = os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		w.opt.Logf("store(wal): snapshot %d: %v", upto, err)
		_ = os.Remove(tmp)
		return
	}
	if err := syncDir(w.dir); err != nil {
		w.opt.Logf("store(wal): snapshot %d: %v", upto, err)
		return
	}

	w.mu.Lock()
	prev := w.snapID
	w.snapID = upto
	w.snapshots++
	w.mu.Unlock()

	// Compaction: everything the new snapshot covers is dead weight.
	// Removal order does not matter for correctness — recovery skips
	// segments <= snapID and walks snapshots newest-first.
	if prev > 0 {
		_ = os.Remove(w.snapPath(prev))
	}
	for id := prev + 1; id <= upto; id++ {
		_ = os.Remove(w.segPath(id))
	}
	// Also reap any still-older leftovers from interrupted compactions.
	if entries, err := os.ReadDir(w.dir); err == nil {
		for _, e := range entries {
			if id, ok := parseSeqName(e.Name(), segPrefix, segSuffix); ok && id <= upto {
				_ = os.Remove(filepath.Join(w.dir, e.Name()))
			}
			if id, ok := parseSeqName(e.Name(), snapPrefix, snapSuffix); ok && id < upto {
				_ = os.Remove(filepath.Join(w.dir, e.Name()))
			}
		}
	}
	_ = syncDir(w.dir)
	w.opt.Logf("store(wal): snapshot through segment %d (%d keys), compacted", upto, len(idx))
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

func (w *WAL) segPath(id uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("%s%08d%s", segPrefix, id, segSuffix))
}

func (w *WAL) snapPath(id uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("%s%08d%s", snapPrefix, id, snapSuffix))
}

// parseSeqName extracts the numeric id out of prefix<number>suffix.
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if mid == "" {
		return 0, false
	}
	var id uint64
	for _, c := range mid {
		if c < '0' || c > '9' {
			return 0, false
		}
		id = id*10 + uint64(c-'0')
	}
	return id, true
}

// appendRecord encodes one record onto buf.
func appendRecord(buf []byte, kind byte, key string, val []byte) []byte {
	var hdr [13]byte // crc + kind + keyLen + valLen
	hdr[4] = kind
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(val)))
	start := len(buf)
	buf = append(buf, hdr[:]...)
	buf = append(buf, key...)
	buf = append(buf, val...)
	crc := crc32.ChecksumIEEE(buf[start+4:])
	binary.LittleEndian.PutUint32(buf[start:start+4], crc)
	return buf
}

// decodeRecord parses the record at the head of data, returning its
// total encoded length.
func decodeRecord(data []byte) (kind byte, key string, val []byte, n int, err error) {
	if len(data) < 13 {
		return 0, "", nil, 0, io.ErrUnexpectedEOF
	}
	wantCRC := binary.LittleEndian.Uint32(data[0:4])
	kind = data[4]
	keyLen := binary.LittleEndian.Uint32(data[5:9])
	valLen := binary.LittleEndian.Uint32(data[9:13])
	if kind != recPut && kind != recDelete {
		return 0, "", nil, 0, fmt.Errorf("bad record kind %d", kind)
	}
	if uint64(keyLen)+uint64(valLen) > maxRecordSize {
		return 0, "", nil, 0, fmt.Errorf("record too large (%d+%d)", keyLen, valLen)
	}
	n = 13 + int(keyLen) + int(valLen)
	if len(data) < n {
		return 0, "", nil, 0, io.ErrUnexpectedEOF
	}
	if crc32.ChecksumIEEE(data[4:n]) != wantCRC {
		return 0, "", nil, 0, errors.New("checksum mismatch")
	}
	key = string(data[13 : 13+keyLen])
	val = append([]byte(nil), data[13+int(keyLen):n]...)
	if kind == recDelete {
		val = nil
	}
	return kind, key, val, n, nil
}

// writeSnapshotFile serializes idx to path with an fsync.
func writeSnapshotFile(path string, idx map[string][]byte) error {
	keys := make([]string, 0, len(idx))
	for k := range idx {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	body := make([]byte, 0, 4096)
	var scratch [4]byte
	binary.LittleEndian.PutUint32(scratch[:], uint32(len(keys)))
	body = append(body, scratch[:]...)
	for _, k := range keys {
		binary.LittleEndian.PutUint32(scratch[:], uint32(len(k)))
		body = append(body, scratch[:]...)
		body = append(body, k...)
		binary.LittleEndian.PutUint32(scratch[:], uint32(len(idx[k])))
		body = append(body, scratch[:]...)
		body = append(body, idx[k]...)
	}
	binary.LittleEndian.PutUint32(scratch[:], crc32.ChecksumIEEE(body))

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(snapMagic[:]); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(body); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(scratch[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadSnapshot parses a snapshot file into a fresh index.
func loadSnapshot(path string) (map[string][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+8 || string(data[:len(snapMagic)]) != string(snapMagic[:]) {
		return nil, errors.New("bad snapshot header")
	}
	body := data[len(snapMagic) : len(data)-4]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, errors.New("snapshot checksum mismatch")
	}
	idx := make(map[string][]byte)
	count := binary.LittleEndian.Uint32(body[:4])
	off := 4
	for i := uint32(0); i < count; i++ {
		if off+4 > len(body) {
			return nil, io.ErrUnexpectedEOF
		}
		keyLen := int(binary.LittleEndian.Uint32(body[off : off+4]))
		off += 4
		if off+keyLen+4 > len(body) {
			return nil, io.ErrUnexpectedEOF
		}
		key := string(body[off : off+keyLen])
		off += keyLen
		valLen := int(binary.LittleEndian.Uint32(body[off : off+4]))
		off += 4
		if off+valLen > len(body) {
			return nil, io.ErrUnexpectedEOF
		}
		idx[key] = append([]byte(nil), body[off:off+valLen]...)
		off += valLen
	}
	if off != len(body) {
		return nil, errors.New("snapshot trailing data")
	}
	return idx, nil
}

// syncFile fsyncs one file by path (used after tail truncation).
func syncFile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}
