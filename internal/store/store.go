// Package store is the pluggable durable-store layer backing every
// node's stable storage (node.Disk) on the real runtime.
//
// Three engines ship, selected by name through a registry (the cmd/
// daemons expose it as -store):
//
//   - "files": the legacy layout — one fsynced file per key, renamed
//     into place, with a parent-directory fsync after every rename and
//     remove. Durability is per-operation, which reproduces the
//     paper's ~30% blocking-pessimistic submission overhead
//     "dominated by disk access" (§4.1, figure 4): every log entry is
//     an independent seek + multiple fsyncs.
//   - "wal": a segmented append-only write-ahead log with group
//     commit. A committer goroutine batches every Write/Delete staged
//     while the previous commit was in flight into one write+fsync;
//     callers block (or, via WriteAsync, are called back) only when
//     their batch's fsync completes. An in-memory index serves reads;
//     periodic snapshots plus segment compaction bound recovery
//     replay; every record is CRC-checked and a torn final record is
//     truncated on re-open. This is the engine that makes pessimistic
//     logging nearly as cheap as optimistic without weakening its
//     guarantee.
//   - "memory": volatile, for tests and throwaway clients.
//
// Engines refuse to open a directory holding another engine's data:
// silently reinterpreting a files-engine directory as wal (or vice
// versa) would present an empty store to a recovering node, which is
// indistinguishable from data loss.
package store

import (
	"fmt"
	"sort"
	"sync"

	"rpcv/internal/node"
)

// Store is a durable key-value store: node.Disk plus the batch-aware
// contract (WriteAsync/Sync) and a lifecycle. Write and Delete are
// durable when they return; WriteAsync is durable when its callback
// runs. Engines without real batching implement WriteAsync as a
// synchronous Write followed by the callback.
//
// Store callbacks (WriteAsync done) may run on an engine-internal
// goroutine; the runtime layer (internal/rt) marshals them back onto
// the node's event loop before handing the store to a protocol
// handler.
type Store interface {
	node.BatchDisk

	// Close flushes staged writes and releases the store. The
	// directory's contents survive, as a crash-stop would leave them.
	Close() error
}

// Factory opens (creating if needed) an engine's store rooted at dir.
type Factory func(dir string) (Store, error)

var (
	registryMu sync.Mutex
	registry   = map[string]Factory{}
)

// Register installs an engine factory under name. Registering a
// duplicate name panics: it is always a wiring bug.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("store: duplicate engine %q", name))
	}
	registry[name] = f
}

// Engines returns the registered engine names, sorted.
func Engines() []string {
	registryMu.Lock()
	defer registryMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Default is the engine Open falls back to when the name is empty: the
// legacy per-key file layout, so existing deployments reopen their
// directories unchanged.
const Default = "files"

// Open creates a store with the named engine rooted at dir. An empty
// name selects Default.
func Open(engine, dir string) (Store, error) {
	if engine == "" {
		engine = Default
	}
	registryMu.Lock()
	f, ok := registry[engine]
	registryMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("store: unknown engine %q (have %v)", engine, Engines())
	}
	return f(dir)
}

func init() {
	Register("files", func(dir string) (Store, error) { return OpenFiles(dir) })
	Register("memory", func(string) (Store, error) { return NewMemory(), nil })
	Register("wal", func(dir string) (Store, error) { return OpenWAL(dir, WALOptions{}) })
}
