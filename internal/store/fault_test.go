package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// The fault wrapper must interpose *after* the engine's own
// directory-refusal check: a wal-engine directory opened through the
// fault path with the files engine must still be refused, and vice
// versa. (This is the wrapper-ordering bug class: a wrapper that opens
// the directory itself, or that swallows Open errors, would silently
// present an empty store over foreign data.)
func TestFaultWrapperPreservesEngineRefusal(t *testing.T) {
	dir := t.TempDir()

	w, err := OpenFaulty("wal", dir, &FaultPlan{})
	if err != nil {
		t.Fatalf("open wal with faults: %v", err)
	}
	if err := w.Write("k", []byte("v")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	if _, err := OpenFaulty("files", dir, &FaultPlan{}); err == nil {
		t.Fatal("files engine must refuse a wal directory even when fault-wrapped")
	}

	// The refusal is about the directory, not the wrapper: reopening
	// with the right engine under the same wrapper works and recovers.
	w2, err := OpenFaulty("wal", dir, &FaultPlan{})
	if err != nil {
		t.Fatalf("reopen wal with faults: %v", err)
	}
	defer func() { _ = w2.Close() }() // cleanup; recovery already verified
	if v, ok := w2.Read("k"); !ok || string(v) != "v" {
		t.Fatalf("recovered %q, %v; want \"v\", true", v, ok)
	}
}

func TestFaultPlanFailCommitsIsStickyUntilHeal(t *testing.T) {
	plan := &FaultPlan{}
	s := WithFaults(NewMemory(), plan)

	if err := s.Write("a", []byte("1")); err != nil {
		t.Fatalf("unfaulted write: %v", err)
	}
	plan.FailCommits(2) // next op fine, the one after fails
	if err := s.Write("b", []byte("2")); err != nil {
		t.Fatalf("write before countdown expires: %v", err)
	}
	if err := s.Write("c", []byte("3")); !errors.Is(err, ErrInjected) {
		t.Fatalf("2nd write: got %v, want ErrInjected", err)
	}
	if err := s.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync after failure must stay broken, got %v", err)
	}
	if err := s.Delete("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("delete after failure must stay broken, got %v", err)
	}
	if !plan.Broken() {
		t.Fatal("plan should report broken")
	}

	plan.Heal()
	if err := s.Write("d", []byte("4")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	st := plan.Stats()
	if st.FailedOps != 3 {
		t.Fatalf("FailedOps = %d, want 3", st.FailedOps)
	}
	// Reads are never faulted, and the failed write must not be visible.
	if _, ok := s.Read("c"); ok {
		t.Fatal("failed write leaked into the store")
	}
	if v, ok := s.Read("b"); !ok || string(v) != "2" {
		t.Fatalf("pre-fault write lost: %q, %v", v, ok)
	}
}

func TestFaultPlanTornWrite(t *testing.T) {
	plan := &FaultPlan{}
	s := WithFaults(NewMemory(), plan)

	plan.TornWrites(1)
	err := s.Write("k", []byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: got %v, want ErrInjected", err)
	}
	// The prefix really landed — torn, not absent.
	if v, ok := s.Read("k"); !ok || string(v) != "01234" {
		t.Fatalf("torn value = %q, %v; want \"01234\"", v, ok)
	}
	// One-shot: the next write is whole.
	if err := s.Write("k", []byte("whole")); err != nil {
		t.Fatalf("write after torn: %v", err)
	}
	if v, _ := s.Read("k"); string(v) != "whole" {
		t.Fatalf("value = %q, want \"whole\"", v)
	}
	if st := plan.Stats(); st.TornOps != 1 {
		t.Fatalf("TornOps = %d, want 1", st.TornOps)
	}
}

func TestFaultPlanStallCommits(t *testing.T) {
	plan := &FaultPlan{}
	s := WithFaults(NewMemory(), plan)

	plan.StallCommits(30 * time.Millisecond)
	start := time.Now()
	if err := s.Write("k", []byte("v")); err != nil {
		t.Fatalf("stalled write: %v", err)
	}
	if took := time.Since(start); took < 30*time.Millisecond {
		t.Fatalf("write took %v, want >= 30ms", took)
	}
	plan.Heal()
	start = time.Now()
	if err := s.Write("k", []byte("v")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	if took := time.Since(start); took > 25*time.Millisecond {
		t.Fatalf("healed write took %v, stall not cleared", took)
	}
	if st := plan.Stats(); st.StalledOps != 1 {
		t.Fatalf("StalledOps = %d, want 1", st.StalledOps)
	}
}

// A stall configured on the plan lands inside the WAL's group-commit
// completion path: async writes staged behind a stalled commit all
// wait, and everything staged before the sticky failure triggers is
// recovered on reopen — the slow-then-dead disk under live load.
func TestFaultWrapperStallsWALCommitterAndRecovers(t *testing.T) {
	dir := t.TempDir()
	plan := &FaultPlan{}
	s, err := OpenFaulty("wal", dir, plan)
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	plan.StallCommits(10 * time.Millisecond)
	const n = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	okOps := make(map[string]bool)
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		key := fmt.Sprintf("k%d", i)
		s.WriteAsync(key, []byte(key), func(err error) {
			mu.Lock()
			okOps[key] = err == nil
			mu.Unlock()
			wg.Done()
		})
	}
	wg.Wait()
	if took := time.Since(start); took < 10*time.Millisecond {
		t.Fatalf("async batch completed in %v, stall never applied", took)
	}

	// Now the disk "dies": next durable op fails and stays failed.
	plan.Heal()
	plan.FailCommits(1)
	if err := s.Write("late", []byte("late")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-death write: got %v, want ErrInjected", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Crash-restart without the wrapper: every acknowledged write is
	// there, the failed one is not.
	r, err := Open("wal", dir)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer func() { _ = r.Close() }() // cleanup; recovery already verified
	for key, acked := range okOps {
		if !acked {
			t.Fatalf("stalled write %q was acked with error", key)
		}
		if v, ok := r.Read(key); !ok || string(v) != key {
			t.Fatalf("acked write %q lost across recovery (%q, %v)", key, v, ok)
		}
	}
	if _, ok := r.Read("late"); ok {
		t.Fatal("failed write must not surface after recovery")
	}
}
