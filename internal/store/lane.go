package store

import (
	"errors"
	"sort"
	"strings"
	"sync"
)

// Laner is optionally implemented by engines that can hand out
// per-event-loop staging lanes. A lane is a Store whose writes stage
// under a lane-private lock and ride the engine's shared group commit:
// M event loops each stage into their own lane contention-free, and
// one committer fsync covers everything staged across every lane.
//
// The multi-loop runtime (internal/rt) discovers the interface by type
// assertion and gives each loop its own lane; engines without lanes
// (files, memory) are shared across loops directly — they serialize
// internally.
type Laner interface {
	// Lane returns a new staging lane over the same key space. Lanes
	// observe their own staged writes immediately (read-your-writes)
	// and everything committed engine-wide. Closing a lane flushes it
	// but leaves the engine open; closing the engine retires every
	// lane.
	Lane() Store
}

var _ Laner = (*WAL)(nil)

// laneEntry is one not-yet-committed write overlaying the shared
// index, tagged with the lane sequence that produced it so the
// committer only clears entries it actually drained.
type laneEntry struct {
	val []byte
	del bool
	seq uint64
}

// walLane is a per-event-loop staging lane over a shared WAL.
//
// stage touches only the lane lock: the op is recorded in a lane-local
// overlay (for read-your-writes) and a lane-local staged slice, then
// the shared committer is kicked. The committer drains every lane per
// batch, applies the drained ops to the shared index in one amortized
// critical section, appends them to the segment and completes them
// after the single batch fsync — so the engine-wide w.mu is taken once
// per commit instead of once per operation.
type walLane struct {
	w *WAL

	mu      sync.Mutex
	staged  []walOp
	pending map[string]laneEntry
	seq     uint64
	closed  bool
}

var _ Store = (*walLane)(nil)

// Lane implements Laner.
func (w *WAL) Lane() Store {
	l := &walLane{w: w, pending: make(map[string]laneEntry)}
	w.mu.Lock()
	if w.closed {
		l.closed = true
	} else {
		w.lanes = append(w.lanes, l)
	}
	w.mu.Unlock()
	return l
}

// stage queues one operation on the lane and kicks the committer.
func (l *walLane) stage(op walOp) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		if op.done != nil {
			op.done(errors.New("store: wal closed"))
		}
		return
	}
	l.seq++
	op.seq = l.seq
	switch op.kind {
	case recPut:
		l.pending[op.key] = laneEntry{val: op.val, seq: l.seq}
	case recDelete:
		l.pending[op.key] = laneEntry{del: true, seq: l.seq}
	}
	l.staged = append(l.staged, op)
	l.mu.Unlock()
	l.w.kickCommitter()
}

// take drains the staged slice for the committer. finalize retires the
// lane: it is the engine-close drain, after which stage fails fast so
// no op can be queued past the final commit and hang forever.
func (l *walLane) take(finalize bool) []walOp {
	l.mu.Lock()
	ops := l.staged
	l.staged = nil
	if finalize {
		l.closed = true
	}
	l.mu.Unlock()
	return ops
}

// clearPending removes overlay entries for drained ops once the shared
// index reflects them. The seq guard keeps a newer staged write to the
// same key (not part of this batch) overlaying correctly.
func (l *walLane) clearPending(ops []walOp) {
	l.mu.Lock()
	for _, op := range ops {
		if op.kind == 0 {
			continue
		}
		if e, ok := l.pending[op.key]; ok && e.seq == op.seq {
			delete(l.pending, op.key)
		}
	}
	l.mu.Unlock()
}

// Write implements Store: stages on the lane and blocks until the
// shared batch fsync covers it.
func (l *walLane) Write(key string, value []byte) error {
	ch := make(chan error, 1)
	l.stage(walOp{kind: recPut, key: key, val: append([]byte(nil), value...),
		done: func(err error) { ch <- err }})
	return <-ch
}

// WriteAsync implements Store.
func (l *walLane) WriteAsync(key string, value []byte, done func(error)) {
	l.stage(walOp{kind: recPut, key: key, val: append([]byte(nil), value...), done: done})
}

// Delete implements Store.
func (l *walLane) Delete(key string) error {
	ch := make(chan error, 1)
	l.stage(walOp{kind: recDelete, key: key, done: func(err error) { ch <- err }})
	return <-ch
}

// Read implements Store: the lane overlay wins (read-your-writes for
// staged ops), then the shared committed index.
func (l *walLane) Read(key string) ([]byte, bool) {
	l.mu.Lock()
	if e, ok := l.pending[key]; ok {
		if e.del {
			l.mu.Unlock()
			return nil, false
		}
		v := append([]byte(nil), e.val...)
		l.mu.Unlock()
		return v, true
	}
	l.mu.Unlock()
	return l.w.Read(key)
}

// Keys implements Store: shared index keys merged with staged puts,
// minus staged deletes.
func (l *walLane) Keys(prefix string) []string {
	l.mu.Lock()
	adds := make([]string, 0, len(l.pending))
	dels := make(map[string]bool)
	for k, e := range l.pending {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		if e.del {
			dels[k] = true
		} else {
			adds = append(adds, k)
		}
	}
	l.mu.Unlock()
	seen := make(map[string]bool, len(adds))
	keys := make([]string, 0, len(adds))
	for _, k := range l.w.Keys(prefix) {
		if !dels[k] && !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for _, k := range adds {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Sync implements Store: a barrier through the lane's staging order,
// durable once the shared fsync covering it returns.
func (l *walLane) Sync() error {
	ch := make(chan error, 1)
	l.stage(walOp{done: func(err error) { ch <- err }})
	return <-ch
}

// Close implements Store: flushes the lane but leaves the shared
// engine (and the lane) open — the engine owner closes the WAL, which
// retires every lane.
func (l *walLane) Close() error {
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return nil
	}
	return l.Sync()
}
