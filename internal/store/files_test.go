package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestFilesWriteSyncsDirectory is the durability regression test:
// Files.Write once synced the file but never the parent directory, so
// a crash right after the rename could lose it — the message log's
// pessimistic guarantee hinged on filesystem luck.
func TestFilesWriteSyncsDirectory(t *testing.T) {
	var (
		mu     sync.Mutex
		synced []string
	)
	orig := syncDir
	syncDir = func(dir string) error {
		mu.Lock()
		synced = append(synced, dir)
		mu.Unlock()
		return orig(dir)
	}
	defer func() { syncDir = orig }()

	dir := t.TempDir()
	d, err := OpenFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Write("msglog/1", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	count := func() int {
		mu.Lock()
		defer mu.Unlock()
		for _, s := range synced {
			if s != dir {
				t.Fatalf("synced %q, want %q", s, dir)
			}
		}
		return len(synced)
	}
	if count() == 0 {
		t.Fatal("Write never fsynced the directory after the rename")
	}
	if v, ok := d.Read("msglog/1"); !ok || string(v) != "payload" {
		t.Fatalf("read back = %q, %v", v, ok)
	}
	// Delete has the same crash-resurrection hazard as Write's rename.
	before := count()
	if err := d.Delete("msglog/1"); err != nil {
		t.Fatal(err)
	}
	if count() <= before {
		t.Fatal("Delete never fsynced the directory after the remove")
	}
	if _, ok := d.Read("msglog/1"); ok {
		t.Fatal("delete ineffective")
	}
	// Deleting an absent key stays a no-op, now with an error return.
	if err := d.Delete("msglog/absent"); err != nil {
		t.Fatalf("delete absent: %v", err)
	}
}

// TestFilesRoundTrip exercises the basic contract through the registry.
func TestFilesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open("", dir) // empty engine name = the legacy default
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*Files); !ok {
		t.Fatalf("default engine = %T, want *Files", st)
	}
	if err := st.Write("a/1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := st.Write("a/2", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := st.Write("b/1", []byte("z")); err != nil {
		t.Fatal(err)
	}
	if got := st.Keys("a/"); len(got) != 2 || got[0] != "a/1" || got[1] != "a/2" {
		t.Fatalf("Keys(a/) = %v", got)
	}
	done := make(chan error, 1)
	st.WriteAsync("a/3", []byte("w"), func(err error) { done <- err })
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if v, ok := st.Read("a/3"); !ok || string(v) != "w" {
		t.Fatalf("async write not readable: %q %v", v, ok)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen sees everything (files are the store).
	st2, err := Open("files", dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Keys(""); len(got) != 4 {
		t.Fatalf("reopened Keys = %v", got)
	}
}

// TestFilesRefusesWALDirectory pins the mixed-directory guard: a
// files-engine Open of a directory holding wal segments must fail
// cleanly instead of presenting an empty store.
func TestFilesRefusesWALDirectory(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFiles(dir); err == nil {
		t.Fatal("OpenFiles accepted a wal directory")
	}
}

// TestOpenUnknownEngine pins the registry error path.
func TestOpenUnknownEngine(t *testing.T) {
	if _, err := Open("mysql", t.TempDir()); err == nil {
		t.Fatal("Open accepted an unknown engine")
	}
}

// TestEnginesRegistered pins the shipped engine set.
func TestEnginesRegistered(t *testing.T) {
	got := Engines()
	want := []string{"files", "memory", "wal"}
	if len(got) != len(want) {
		t.Fatalf("Engines() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Engines() = %v, want %v", got, want)
		}
	}
}

// TestFilesIgnoresStrayFiles checks Keys skips non-engine files.
func TestFilesIgnoresStrayFiles(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := d.Write("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got := d.Keys(""); len(got) != 1 || got[0] != "k" {
		t.Fatalf("Keys = %v", got)
	}
}
