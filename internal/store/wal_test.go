package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func openTestWAL(t *testing.T, dir string, opt WALOptions) *WAL {
	t.Helper()
	w, err := OpenWAL(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Close is idempotent, so tests that close explicitly (to assert
	// the flush error or reopen the directory) are unaffected.
	t.Cleanup(func() { _ = w.Close() })
	return w
}

// TestWALRoundTrip covers the basic Disk contract: write, read-your-
// writes, delete, prefix-sorted Keys, and survival across re-open.
func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, WALOptions{})
	if err := w.Write("msglog/2", []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := w.Write("msglog/1", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := w.Write("other/x", []byte("c")); err != nil {
		t.Fatal(err)
	}
	if err := w.Write("msglog/1", []byte("a2")); err != nil {
		t.Fatal(err) // overwrite
	}
	if err := w.Delete("msglog/2"); err != nil {
		t.Fatal(err)
	}
	if err := w.Delete("msglog/absent"); err != nil {
		t.Fatal(err) // absent delete is a no-op
	}
	if v, ok := w.Read("msglog/1"); !ok || string(v) != "a2" {
		t.Fatalf("Read = %q, %v", v, ok)
	}
	if _, ok := w.Read("msglog/2"); ok {
		t.Fatal("deleted key readable")
	}
	if got := w.Keys("msglog/"); len(got) != 1 || got[0] != "msglog/1" {
		t.Fatalf("Keys = %v", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery rebuilds the same state from the log.
	w2 := openTestWAL(t, dir, WALOptions{})
	if v, ok := w2.Read("msglog/1"); !ok || string(v) != "a2" {
		t.Fatalf("recovered Read = %q, %v", v, ok)
	}
	if _, ok := w2.Read("msglog/2"); ok {
		t.Fatal("deleted key resurrected by recovery")
	}
	if got := w2.Keys(""); len(got) != 2 {
		t.Fatalf("recovered Keys = %v", got)
	}
}

// TestWALGroupCommit proves the headline property: concurrent writers
// share fsyncs. 64 writers × 8 writes each from 64 goroutines must
// complete in far fewer commits than operations.
func TestWALGroupCommit(t *testing.T) {
	w := openTestWAL(t, t.TempDir(), WALOptions{})
	const writers, each = 64, 8
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				key := fmt.Sprintf("k/%03d/%d", i, j)
				if err := w.Write(key, []byte("v")); err != nil {
					t.Errorf("write %s: %v", key, err)
				}
			}
		}(i)
	}
	wg.Wait()
	st := w.Stats()
	if st.CommittedOps != writers*each {
		t.Fatalf("committed %d ops, want %d", st.CommittedOps, writers*each)
	}
	if st.Commits >= st.CommittedOps {
		t.Fatalf("no batching: %d commits for %d ops", st.Commits, st.CommittedOps)
	}
	t.Logf("group commit: %d ops in %d fsyncs (%.1fx amortization)",
		st.CommittedOps, st.Commits, float64(st.CommittedOps)/float64(st.Commits))
}

// TestWALAsyncWrite checks WriteAsync completes with durability and
// preserves read-your-writes before the callback.
func TestWALAsyncWrite(t *testing.T) {
	w := openTestWAL(t, t.TempDir(), WALOptions{})
	if err := w.Write("seed", []byte("s")); err != nil {
		t.Fatal(err)
	}
	const n = 100
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("a/%03d", i)
		w.WriteAsync(key, []byte("v"), func(err error) { errs <- err })
		if _, ok := w.Read(key); !ok {
			t.Fatalf("staged write %s not readable", key)
		}
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestWALTornTailTruncated is the crash-window edge: a torn final
// record (partial write, crc mismatch) is truncated on recovery and
// every earlier entry survives.
func TestWALTornTailTruncated(t *testing.T) {
	for _, tear := range []string{"partial-record", "garbage-crc"} {
		t.Run(tear, func(t *testing.T) {
			dir := t.TempDir()
			w := openTestWAL(t, dir, WALOptions{})
			for i := 0; i < 10; i++ {
				if err := w.Write(fmt.Sprintf("k/%02d", i), []byte("payload")); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			seg := filepath.Join(dir, "wal-00000001.seg")
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			switch tear {
			case "partial-record":
				// A record written but cut mid-way by the crash.
				torn := appendRecord(nil, recPut, "k/torn", bytes.Repeat([]byte("x"), 100))
				data = append(data, torn[:len(torn)-30]...)
			case "garbage-crc":
				// Bytes hit the platter scrambled.
				torn := appendRecord(nil, recPut, "k/torn", []byte("value"))
				torn[0] ^= 0xFF // corrupt the crc
				data = append(data, torn...)
			}
			if err := os.WriteFile(seg, data, 0o644); err != nil {
				t.Fatal(err)
			}

			w2 := openTestWAL(t, dir, WALOptions{})
			if got := len(w2.Keys("k/")); got != 10 {
				t.Fatalf("recovered %d keys, want 10", got)
			}
			if _, ok := w2.Read("k/torn"); ok {
				t.Fatal("torn record surfaced as data")
			}
			// The tail is gone from disk too: a third open replays
			// cleanly without re-truncating.
			if err := w2.Write("k/after", []byte("y")); err != nil {
				t.Fatal(err)
			}
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
			w3 := openTestWAL(t, dir, WALOptions{})
			if _, ok := w3.Read("k/after"); !ok {
				t.Fatal("post-truncation write lost")
			}
		})
	}
}

// TestWALCorruptSealedSegmentFails: corruption anywhere but the final
// segment's tail is not a crash signature — recovery must refuse
// rather than silently drop committed data.
func TestWALCorruptSealedSegmentFails(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, WALOptions{SegmentBytes: 256, SnapshotSegments: 1000})
	for i := 0; i < 40; i++ {
		if err := w.Write(fmt.Sprintf("k/%02d", i), bytes.Repeat([]byte("x"), 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 2 {
		t.Fatalf("want ≥2 segments, got %v", segs)
	}
	// Flip a byte in the middle of the FIRST (sealed) segment.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(dir, WALOptions{}); err == nil {
		t.Fatal("recovery accepted a corrupt sealed segment")
	}
}

// TestWALSnapshotCompactionBoundsReplay drives enough writes through
// tiny segments to force snapshots, then asserts (a) a restart replays
// at most one snapshot interval of log and (b) no data is lost.
func TestWALSnapshotCompactionBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	opt := WALOptions{SegmentBytes: 512, SnapshotSegments: 2}
	w := openTestWAL(t, dir, opt)
	const n = 400
	val := bytes.Repeat([]byte("v"), 48)
	for i := 0; i < n; i++ {
		if err := w.Write(fmt.Sprintf("k/%04d", i%50), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Snapshots == 0 {
		t.Fatal("no snapshot was ever taken")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Compaction keeps the directory bounded: segments past the
	// snapshot interval are gone.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	// One snapshot interval plus the active segment and rotation slack.
	if len(segs) > opt.SnapshotSegments+2 {
		t.Fatalf("compaction left %d segments: %v", len(segs), segs)
	}

	w2 := openTestWAL(t, dir, opt)
	if got := len(w2.Keys("k/")); got != 50 {
		t.Fatalf("recovered %d keys, want 50", got)
	}
	// Replay work is bounded by one snapshot interval of log, not the
	// full history: the records per segment ≈ 512/(13+6+48) ≈ 8, so
	// (SnapshotSegments+2) segments can hold at most ~3 dozen records
	// — far below the 400 written. Allow generous slack.
	replayBound := uint64((opt.SnapshotSegments + 2) * (int(opt.SegmentBytes) / 60))
	if st2 := w2.Stats(); st2.ReplayedRecords > replayBound {
		t.Fatalf("restart replayed %d records, want ≤ %d (one snapshot interval)",
			st2.ReplayedRecords, replayBound)
	}
}

// TestWALSnapshotConcurrentWrites hammers writes from several
// goroutines while tiny thresholds force snapshots mid-stream, then
// verifies nothing is lost across recovery — the snapshot freeze and
// the live index never diverge.
func TestWALSnapshotConcurrentWrites(t *testing.T) {
	dir := t.TempDir()
	opt := WALOptions{SegmentBytes: 256, SnapshotSegments: 1}
	w := openTestWAL(t, dir, opt)
	const writers, each = 8, 60
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				key := fmt.Sprintf("w%d/%03d", g, i)
				if err := w.Write(key, []byte(strings.Repeat("x", 32))); err != nil {
					t.Errorf("write %s: %v", key, err)
				}
				if i%10 == 9 { // interleave deletes with snapshotting
					if err := w.Delete(fmt.Sprintf("w%d/%03d", g, i-5)); err != nil {
						t.Errorf("delete: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if st := w.Stats(); st.Snapshots == 0 {
		t.Fatal("thresholds never triggered a snapshot under load")
	}
	want := w.Keys("")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := openTestWAL(t, dir, opt)
	got := w2.Keys("")
	if len(got) != len(want) {
		t.Fatalf("recovered %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("key %d: recovered %q, want %q", i, got[i], want[i])
		}
	}
}

// TestWALRefusesUnreadableSnapshots: once compaction has removed the
// segments a snapshot covers, a store whose every snapshot fails
// validation must refuse to open — proceeding would present a partial
// (or empty) key set as if it were the complete recovered state.
func TestWALRefusesUnreadableSnapshots(t *testing.T) {
	dir := t.TempDir()
	opt := WALOptions{SegmentBytes: 128, SnapshotSegments: 1}
	w := openTestWAL(t, dir, opt)
	for i := 0; i < 100; i++ {
		if err := w.Write(fmt.Sprintf("k/%02d", i%10), []byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) == 0 {
		t.Fatal("no snapshot to corrupt")
	}
	for _, s := range snaps {
		data, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0xFF // break the checksum
		if err := os.WriteFile(s, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := OpenWAL(dir, opt); err == nil {
		t.Fatal("recovery accepted a store whose only snapshots are unreadable")
	}
}

// TestWALRefusesFilesDirectory is the other half of the mixed-
// directory guard: wal must not open a legacy files-engine directory.
func TestWALRefusesFilesDirectory(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Write("coord/job/1", []byte("rec")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(dir, WALOptions{}); err == nil {
		t.Fatal("OpenWAL accepted a files-engine directory")
	}
}

// TestWALClosedStoreFails: operations after Close fail loudly instead
// of pretending durability.
func TestWALClosedStoreFails(t *testing.T) {
	w := openTestWAL(t, t.TempDir(), WALOptions{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write("k", []byte("v")); err == nil {
		t.Fatal("Write on closed wal succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
}

// TestWALSnapshotSurvivesAlone: after compaction removes every
// segment's predecessor, a store whose only history is snapshot + tail
// still recovers fully (the recovery path that starts from snapID+1).
func TestWALSnapshotSurvivesAlone(t *testing.T) {
	dir := t.TempDir()
	opt := WALOptions{SegmentBytes: 128, SnapshotSegments: 1}
	w := openTestWAL(t, dir, opt)
	for i := 0; i < 100; i++ {
		if err := w.Write(fmt.Sprintf("k/%02d", i%10), []byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := openTestWAL(t, dir, opt)
	if got := len(w2.Keys("k/")); got != 10 {
		t.Fatalf("recovered %d keys, want 10", got)
	}
	if v, ok := w2.Read("k/09"); !ok || string(v) != "0123456789abcdef" {
		t.Fatalf("Read after snapshot-only recovery = %q, %v", v, ok)
	}
}
