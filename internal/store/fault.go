package store

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrInjected is the root of every error produced by a fault-injecting
// store wrapper. Callers distinguish injected faults from real disk
// failures with errors.Is(err, ErrInjected).
var ErrInjected = errors.New("store: injected disk fault")

// FaultStats counts the faults a plan has actually delivered.
type FaultStats struct {
	FailedOps  int // durable ops that returned an injected error
	TornOps    int // ops that wrote a truncated value then errored
	StalledOps int // ops delayed by the configured stall
}

// FaultPlan is a mutable, concurrency-safe schedule of disk faults for
// a wrapped store (WithFaults). The chaos harness arms it from outside
// the node while the node is live:
//
//   - FailCommits(n): the nth durable operation from now fails with
//     ErrInjected, and — like a real device that went away — every
//     later durable operation keeps failing until Heal. This is the
//     "fail the Nth fsync" fault: with the WAL engine the error
//     surfaces from inside a group commit, exercising the sticky
//     broken-log path and recovery on reopen.
//   - TornWrites(n): the nth durable write persists only a prefix of
//     its value to the inner store, then reports ErrInjected — a torn
//     write observed as a failure.
//   - StallCommits(d): every durable operation is delayed by d. For
//     synchronous Write/Delete/Sync the caller blocks (a seized
//     spindle); for WriteAsync the delay runs inside the completion
//     callback — on the WAL engine that is the committer goroutine
//     itself, so the stall lands mid-group-commit and every batch
//     staged behind it queues up, which is exactly the
//     slow-disk-under-live-load regime the harness wants.
//
// Reads are never faulted: the taxonomy targets durability, and the
// in-memory indexes all engines keep would mask read faults anyway.
type FaultPlan struct {
	mu        sync.Mutex
	failAfter int // countdown to sticky failure; 0 = disarmed
	broken    bool
	tornAfter int // countdown to one torn write; 0 = disarmed
	stall     time.Duration
	stats     FaultStats
}

// FailCommits arms the plan to fail the nth durable operation from now
// (n >= 1) and every one after it, until Heal.
func (p *FaultPlan) FailCommits(n int) {
	if n < 1 {
		n = 1
	}
	p.mu.Lock()
	p.failAfter = n
	p.mu.Unlock()
}

// TornWrites arms the plan to truncate the nth durable write from now
// (n >= 1): half the value reaches the inner store, the caller gets
// ErrInjected. One-shot; later ops proceed normally.
func (p *FaultPlan) TornWrites(n int) {
	if n < 1 {
		n = 1
	}
	p.mu.Lock()
	p.tornAfter = n
	p.mu.Unlock()
}

// StallCommits delays every durable operation by d. Zero disarms.
func (p *FaultPlan) StallCommits(d time.Duration) {
	p.mu.Lock()
	p.stall = d
	p.mu.Unlock()
}

// Heal clears the sticky failure and every armed countdown. The store
// works again (the inner engine permitting — a WAL whose commit really
// failed stays broken until reopened).
func (p *FaultPlan) Heal() {
	p.mu.Lock()
	p.failAfter, p.broken, p.tornAfter, p.stall = 0, false, 0, 0
	p.mu.Unlock()
}

// Broken reports whether the sticky failure has triggered.
func (p *FaultPlan) Broken() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.broken
}

// Stats returns the faults delivered so far.
func (p *FaultPlan) Stats() FaultStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

type faultAction int

const (
	faultNone faultAction = iota
	faultFail
	faultTorn
)

// next charges one durable operation against the plan and returns what
// to do with it plus how long to stall it.
func (p *FaultPlan) next() (faultAction, time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	d := p.stall
	if d > 0 {
		p.stats.StalledOps++
	}
	if p.broken {
		p.stats.FailedOps++
		return faultFail, d
	}
	if p.failAfter > 0 {
		p.failAfter--
		if p.failAfter == 0 {
			p.broken = true
			p.stats.FailedOps++
			return faultFail, d
		}
	}
	if p.tornAfter > 0 {
		p.tornAfter--
		if p.tornAfter == 0 {
			p.stats.TornOps++
			return faultTorn, d
		}
	}
	return faultNone, d
}

// WithFaults interposes plan between callers and an already-open store.
//
// Ordering matters and is the reason this wrapper takes a Store rather
// than opening one itself: the inner engine must run its own
// directory-refusal check (engines refuse each other's directories)
// before any fault plumbing attaches. Open the engine first — through
// store.Open or OpenFaulty — and wrap what it returns; a directory
// holding foreign data then fails at Open exactly as it would without
// the wrapper.
//
// The wrapper passes reads through untouched and does not forward
// optional interfaces (Laner, WALStats): a faulted store presents the
// minimal Store surface, and the runtime's type assertions degrade
// gracefully. A restart that reopens the directory without the wrapper
// (or with a fresh plan) heals all injected faults — only real damage
// persisted by the inner engine survives, which is what crash-recovery
// scenarios want to observe.
func WithFaults(inner Store, plan *FaultPlan) Store {
	if plan == nil {
		plan = &FaultPlan{}
	}
	return &faulty{inner: inner, plan: plan}
}

// OpenFaulty opens the named engine rooted at dir — running the
// engine's own refusal checks first — and wraps it with plan.
func OpenFaulty(engine, dir string, plan *FaultPlan) (Store, error) {
	inner, err := Open(engine, dir)
	if err != nil {
		return nil, err
	}
	return WithFaults(inner, plan), nil
}

type faulty struct {
	inner Store
	plan  *FaultPlan
}

func (f *faulty) Write(key string, value []byte) error {
	act, d := f.plan.next()
	if d > 0 {
		time.Sleep(d)
	}
	switch act {
	case faultFail:
		return fmt.Errorf("%w: write %q", ErrInjected, key)
	case faultTorn:
		// Persist a prefix so the directory really holds torn data,
		// then report the failure. The write error is the signal the
		// caller acts on; the inner error (if any) is secondary.
		_ = f.inner.Write(key, value[:len(value)/2]) // deliberate: op reports ErrInjected regardless
		return fmt.Errorf("%w: torn write %q (%d of %d bytes)", ErrInjected, key, len(value)/2, len(value))
	}
	return f.inner.Write(key, value)
}

func (f *faulty) Delete(key string) error {
	act, d := f.plan.next()
	if d > 0 {
		time.Sleep(d)
	}
	if act != faultNone {
		return fmt.Errorf("%w: delete %q", ErrInjected, key)
	}
	return f.inner.Delete(key)
}

func (f *faulty) Read(key string) ([]byte, bool) { return f.inner.Read(key) }
func (f *faulty) Keys(prefix string) []string    { return f.inner.Keys(prefix) }

// WriteAsync stages through the inner engine and applies the fault in
// the completion callback. On the WAL engine that callback runs on the
// committer goroutine, so a stall configured here blocks the group
// commit itself — later batches pile up behind it exactly as they
// would behind a slow device. Ordering and exactly-once delivery of
// done are inherited from the inner engine.
func (f *faulty) WriteAsync(key string, value []byte, done func(error)) {
	act, d := f.plan.next()
	if act == faultTorn {
		value = value[:len(value)/2]
	}
	f.inner.WriteAsync(key, value, func(err error) {
		if d > 0 {
			time.Sleep(d)
		}
		switch {
		case act == faultFail && err == nil:
			err = fmt.Errorf("%w: write %q", ErrInjected, key)
		case act == faultTorn && err == nil:
			err = fmt.Errorf("%w: torn write %q", ErrInjected, key)
		}
		done(err)
	})
}

func (f *faulty) Sync() error {
	act, d := f.plan.next()
	if d > 0 {
		time.Sleep(d)
	}
	if act != faultNone {
		return fmt.Errorf("%w: sync", ErrInjected)
	}
	return f.inner.Sync()
}

func (f *faulty) Close() error { return f.inner.Close() }
