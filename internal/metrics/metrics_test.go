package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSampleStats(t *testing.T) {
	s := &Sample{}
	for _, v := range []time.Duration{3, 1, 2, 5, 4} {
		s.Add(v * time.Second)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Min() != time.Second || s.Max() != 5*time.Second {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Mean() != 3*time.Second {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Sum() != 15*time.Second {
		t.Fatalf("sum = %v", s.Sum())
	}
	if s.Quantile(0.5) != 3*time.Second {
		t.Fatalf("median = %v", s.Quantile(0.5))
	}
	if s.Quantile(0) != time.Second || s.Quantile(1) != 5*time.Second {
		t.Fatal("extreme quantiles wrong")
	}
}

func TestSampleEmpty(t *testing.T) {
	s := &Sample{}
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("empty sample stats not zero")
	}
}

func TestSampleQuantileMonotoneQuick(t *testing.T) {
	f := func(vals []uint16, q1, q2 float64) bool {
		if len(vals) == 0 {
			return true
		}
		s := &Sample{}
		for _, v := range vals {
			s.Add(time.Duration(v))
		}
		a, b := clamp01(q1), clamp01(q2)
		if a > b {
			a, b = b, a
		}
		return s.Quantile(a) <= s.Quantile(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func clamp01(x float64) float64 {
	if x != x || x < 0 { // NaN or negative
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "x"}
	s.Add(time.Minute, 10)
	s.Add(2*time.Minute, 10)
	s.Add(3*time.Minute, 20)
	if s.Last() != 20 {
		t.Fatalf("last = %v", s.Last())
	}
	if s.ValueAt(2*time.Minute+30*time.Second) != 10 {
		t.Fatalf("value at 2.5m = %v", s.ValueAt(2*time.Minute+30*time.Second))
	}
	if s.ValueAt(0) != 0 {
		t.Fatal("value before first point not 0")
	}
}

func TestPlateaus(t *testing.T) {
	s := &Series{}
	// 0,0, 5,5,5, 10, 15,15, 20,20 (final value runs excluded).
	for i, v := range []float64{0, 0, 5, 5, 5, 10, 15, 15, 20, 20} {
		s.Add(time.Duration(i)*time.Minute, v)
	}
	// Runs: [5,5,5] and [15,15] count; leading zeros and final 20s do not.
	if got := s.Plateaus(2); got != 2 {
		t.Fatalf("plateaus = %d, want 2", got)
	}
	if got := s.Plateaus(3); got != 1 {
		t.Fatalf("plateaus(3) = %d, want 1", got)
	}
	if (&Series{}).Plateaus(1) != 0 {
		t.Fatal("empty series has plateaus")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 150*time.Millisecond)
	tb.AddRow("beta-long-name", 42)
	out := tb.String()
	if !strings.Contains(out, "# Demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "150ms") {
		t.Error("duration not formatted")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4", len(lines))
	}
	// Columns aligned: "value" header starts at the same offset in all rows.
	head := lines[1]
	idx := strings.Index(head, "value")
	for _, ln := range lines[2:] {
		if len(ln) <= idx {
			t.Fatalf("row shorter than header: %q", ln)
		}
	}
	if tb.Rows() != 2 || tb.Cell(0, 0) != "alpha" {
		t.Fatal("accessors wrong")
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		0:                       "0",
		500 * time.Nanosecond:   "500ns",
		42 * time.Microsecond:   "42us",
		3 * time.Millisecond:    "3ms",
		1500 * time.Millisecond: "1.5s",
		90 * time.Second:        "90.0s",
		2 * time.Hour:           "7200.0s",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int]string{
		100:           "100B",
		1_000:         "1KB",
		10_000:        "10KB",
		1_000_000:     "1MB",
		100_000_000:   "100MB",
		2_000_000_000: "2GB",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.N() != 0 || h.Mean() != 0 || h.P50() != 0 || h.P99() != 0 {
		t.Fatalf("empty histogram not zero: %s", h.String())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations: 1..100 ms.
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i) * time.Millisecond)
	}
	if h.N() != 100 {
		t.Fatalf("n = %d", h.N())
	}
	// Bucket resolution is ~9%: accept that error margin around the
	// exact quantiles.
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.50, 50 * time.Millisecond}, {0.95, 95 * time.Millisecond}, {0.99, 99 * time.Millisecond}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		lo := c.want - c.want/8
		hi := c.want + c.want/8
		if got < lo || got > hi {
			t.Errorf("q%.2f = %v, want within [%v, %v]", c.q, got, lo, hi)
		}
	}
	if got, want := h.Mean(), 50500*time.Microsecond; got != want {
		t.Errorf("mean = %v, want %v (exact)", got, want)
	}
	if h.Max() != 100*time.Millisecond {
		t.Errorf("max = %v", h.Max())
	}
	// Quantiles are clamped to observed extremes.
	if h.Quantile(0) < time.Millisecond || h.Quantile(1) != 100*time.Millisecond {
		t.Errorf("extreme quantiles: q0=%v q1=%v", h.Quantile(0), h.Quantile(1))
	}
}

func TestHistogramSkewedTail(t *testing.T) {
	var h Histogram
	// 95 fast observations and five 10x stragglers: p99 must surface
	// the tail that a mean hides.
	for i := 0; i < 95; i++ {
		h.Add(10 * time.Second)
	}
	for i := 0; i < 5; i++ {
		h.Add(100 * time.Second)
	}
	if p99 := h.P99(); p99 < 80*time.Second {
		t.Fatalf("p99 = %v, straggler invisible", p99)
	}
	if p50 := h.P50(); p50 > 12*time.Second {
		t.Fatalf("p50 = %v, distorted by the tail", p50)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 50; i++ {
		a.Add(time.Millisecond)
		b.Add(time.Second)
	}
	a.Merge(&b)
	if a.N() != 100 {
		t.Fatalf("merged n = %d", a.N())
	}
	if a.Max() != time.Second || a.Quantile(0) != time.Millisecond {
		t.Fatalf("merged extremes: min=%v max=%v", a.Quantile(0), a.Max())
	}
	med := a.P50()
	if med < time.Millisecond || med > time.Second {
		t.Fatalf("merged median = %v out of range", med)
	}
}

func TestHistogramSubMicrosecond(t *testing.T) {
	var h Histogram
	h.Add(0)
	h.Add(500 * time.Nanosecond)
	h.Add(-time.Second) // clamped to zero, not a panic
	if h.N() != 3 || h.Max() != 500*time.Nanosecond {
		t.Fatalf("sub-us handling: n=%d max=%v", h.N(), h.Max())
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	// Every quantile of an empty histogram — including out-of-range
	// inputs — is zero, never a panic or a bucket midpoint.
	for _, q := range []float64{-1, 0, 0.25, 0.5, 0.99, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	// Merging empty into empty stays empty.
	var other Histogram
	h.Merge(&other)
	if h.N() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Errorf("empty+empty merge not empty: %s", h.String())
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	const v = 7 * time.Millisecond
	h.Add(v)
	if h.N() != 1 || h.Mean() != v || h.Max() != v {
		t.Fatalf("single sample: n=%d mean=%v max=%v", h.N(), h.Mean(), h.Max())
	}
	// With one observation every quantile is that observation exactly:
	// the min/max clamp must hide the bucket midpoint's ~9% error.
	for _, q := range []float64{-1, 0, 0.5, 0.95, 0.99, 1, 2} {
		if got := h.Quantile(q); got != v {
			t.Errorf("Quantile(%v) = %v, want exactly %v", q, got, v)
		}
	}
}

func TestHistogramMergeDisjointRanges(t *testing.T) {
	// a occupies low buckets only, b high buckets only, so their count
	// slices have very different lengths; merge must work in both
	// directions (growing the receiver, and folding a shorter donor).
	lo, hi := 10*time.Microsecond, 10*time.Second
	build := func(v time.Duration, n int) *Histogram {
		var h Histogram
		for i := 0; i < n; i++ {
			h.Add(v)
		}
		return &h
	}

	a := build(lo, 100)
	a.Merge(build(hi, 100)) // longer donor grows the receiver
	if a.N() != 200 {
		t.Fatalf("merged n = %d", a.N())
	}
	if a.Quantile(0) != lo || a.Max() != hi {
		t.Fatalf("merged extremes: min=%v max=%v", a.Quantile(0), a.Max())
	}
	// Half the mass sits in each disjoint range: the median must come
	// from one of the two occupied ranges, not the empty gap between.
	med := a.P50()
	if med > 2*lo && med < hi/2 {
		t.Fatalf("median %v landed in the empty gap", med)
	}
	if p99 := a.P99(); p99 < hi/2 {
		t.Fatalf("p99 = %v, upper range invisible", p99)
	}

	b := build(hi, 100)
	b.Merge(build(lo, 100)) // shorter donor into longer receiver
	if b.N() != 200 || b.Quantile(0) != lo || b.Max() != hi {
		t.Fatalf("reverse merge: n=%d min=%v max=%v", b.N(), b.Quantile(0), b.Max())
	}

	// Merging into a zero-value histogram adopts the donor wholesale.
	var empty Histogram
	empty.Merge(build(hi, 3))
	if empty.N() != 3 || empty.Quantile(0) != hi || empty.Max() != hi {
		t.Fatalf("merge into empty: n=%d min=%v max=%v", empty.N(), empty.Quantile(0), empty.Max())
	}
}

// TestSampleQuantileCacheInvalidation pins the sorted-slice cache:
// quantiles computed after an Add must see the new observation (the
// cache is invalidated), and interleaved quantile calls must agree
// with a freshly built sample (the cache never reorders or drops).
func TestSampleQuantileCacheInvalidation(t *testing.T) {
	var s Sample
	s.Add(30 * time.Millisecond)
	s.Add(10 * time.Millisecond)
	if got := s.Quantile(0); got != 10*time.Millisecond {
		t.Fatalf("min quantile = %v, want 10ms", got)
	}
	// The cache is now warm; an Add must invalidate it.
	s.Add(1 * time.Millisecond)
	if got := s.Quantile(0); got != 1*time.Millisecond {
		t.Fatalf("min quantile after Add = %v, want 1ms (stale cache?)", got)
	}
	if got := s.Quantile(1); got != 30*time.Millisecond {
		t.Fatalf("max quantile = %v, want 30ms", got)
	}
	// A full p50/p95/p99 report off one snapshot agrees with a fresh
	// sample holding the same values.
	var fresh Sample
	for _, v := range []time.Duration{30, 10, 1} {
		fresh.Add(v * time.Millisecond)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got, want := s.Quantile(q), fresh.Quantile(q); got != want {
			t.Fatalf("q=%v: cached %v, fresh %v", q, got, want)
		}
	}
	// Values must stay untouched (Quantile sorts a copy, not values).
	if s.values[0] != 30*time.Millisecond {
		t.Fatalf("Quantile reordered the observation log: %v", s.values)
	}
}

// BenchmarkSampleQuantileReport measures the experiment drivers' hot
// reporting pattern — one Add, then a p50/p95/p99 report — which the
// sorted-slice cache turns from three sorts into one.
func BenchmarkSampleQuantileReport(b *testing.B) {
	var s Sample
	for i := 0; i < 10000; i++ {
		s.Add(time.Duration(i*7919%10000) * time.Microsecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(time.Duration(i%10000) * time.Microsecond)
		_ = s.Quantile(0.50)
		_ = s.Quantile(0.95)
		_ = s.Quantile(0.99)
	}
}
