// Package metrics provides the small measurement toolkit shared by the
// experiment drivers: duration samples with summary statistics,
// constant-memory latency histograms with p50/p95/p99 export (the
// scheduling experiments' tail-latency axis), counter time series
// (completed tasks over time, the y-axis of figures 9-11), and
// fixed-width text tables that render every figure as rows the way the
// paper reports them.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"time"
)

// Sample accumulates duration observations. It is a single-goroutine
// analysis type (no internal locking) — for concurrent recording from
// live nodes use the atomic obs.Histogram in internal/obs.
type Sample struct {
	values []time.Duration
	// sorted caches the ascending copy Quantile works on, so a
	// p50/p95/p99 report pays one sort instead of one per quantile.
	// Add invalidates it.
	sorted []time.Duration
}

// Add appends one observation.
func (s *Sample) Add(d time.Duration) {
	s.values = append(s.values, d)
	s.sorted = nil
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 when empty).
func (s *Sample) Mean() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	var total time.Duration
	for _, v := range s.values {
		total += v
	}
	return total / time.Duration(len(s.values))
}

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	min := s.values[0]
	for _, v := range s.values[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	max := s.values[0]
	for _, v := range s.values[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest rank. The
// first call after an Add copies and sorts the sample once; further
// quantiles of the same snapshot reuse the cached order.
func (s *Sample) Quantile(q float64) time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	if s.sorted == nil {
		s.sorted = append([]time.Duration(nil), s.values...)
		sort.Slice(s.sorted, func(i, j int) bool { return s.sorted[i] < s.sorted[j] })
	}
	idx := int(q * float64(len(s.sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.sorted) {
		idx = len(s.sorted) - 1
	}
	return s.sorted[idx]
}

// Sum returns the total of all observations.
func (s *Sample) Sum() time.Duration {
	var total time.Duration
	for _, v := range s.values {
		total += v
	}
	return total
}

// Histogram accumulates duration observations in logarithmic buckets
// (8 per factor-of-two, ~9% relative resolution) and exports the
// latency quantiles the scheduling experiments report. Unlike Sample
// it never stores individual observations, so it is safe for the
// millions-of-calls workloads the roadmap aims at: memory stays
// constant and Add is O(1). Like Sample it is a single-goroutine
// analysis type (no internal locking); the concurrent variant with the
// same bucket scheme is obs.Histogram in internal/obs.
type Histogram struct {
	counts []uint64
	n      uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// histSubBuckets is the resolution: buckets per doubling of duration.
const histSubBuckets = 8

// histBucket maps a duration to its bucket index: a fixed-point log2
// with histSubBuckets steps per octave above 1 us.
func histBucket(d time.Duration) int {
	us := d / time.Microsecond
	if us < 1 {
		return 0
	}
	// Integer log2 of the microsecond count, refined into
	// histSubBuckets linear steps within the octave.
	exp := bits.Len64(uint64(us)) - 1
	base := time.Duration(1) << exp
	frac := int((us - base) * histSubBuckets / base)
	if frac >= histSubBuckets {
		frac = histSubBuckets - 1
	}
	return exp*histSubBuckets + frac
}

// histBucketMid returns the representative duration of a bucket (its
// geometric-ish midpoint).
func histBucketMid(i int) time.Duration {
	exp := i / histSubBuckets
	frac := i % histSubBuckets
	base := time.Duration(1) << exp
	lo := base + base*time.Duration(frac)/histSubBuckets
	hi := base + base*time.Duration(frac+1)/histSubBuckets
	return (lo + hi) / 2 * time.Microsecond
}

// Add records one observation.
func (h *Histogram) Add(d time.Duration) {
	if d < 0 {
		d = 0
	}
	idx := histBucket(d)
	if idx >= len(h.counts) {
		grown := make([]uint64, idx+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[idx]++
	h.n++
	h.sum += d
	if h.n == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// N returns the number of observations.
func (h *Histogram) N() int { return int(h.n) }

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Min returns the smallest observation (exact; 0 when empty).
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest observation (exact).
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns the q-quantile (0 <= q <= 1) to bucket resolution,
// clamped to the exact observed min and max.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.n-1))
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			v := histBucketMid(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// P50 returns the median.
func (h *Histogram) P50() time.Duration { return h.Quantile(0.50) }

// P95 returns the 95th-percentile latency.
func (h *Histogram) P95() time.Duration { return h.Quantile(0.95) }

// P99 returns the 99th-percentile latency.
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }

// Merge folds other into h (combining per-shard histograms).
func (h *Histogram) Merge(other *Histogram) {
	if other.n == 0 {
		return
	}
	if len(other.counts) > len(h.counts) {
		grown := make([]uint64, len(other.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
}

// String summarizes the distribution for log lines and tables.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s max=%s",
		h.n, FormatDuration(h.Mean()), FormatDuration(h.P50()),
		FormatDuration(h.P95()), FormatDuration(h.P99()), FormatDuration(h.max))
}

// Series is a (time offset, value) sequence: e.g. completed tasks as
// seen by a coordinator, sampled every minute (figures 9-11).
type Series struct {
	Name   string
	Points []Point
}

// Point is one sample of a series.
type Point struct {
	At    time.Duration // offset from experiment start
	Value float64
}

// Add appends a point.
func (s *Series) Add(at time.Duration, v float64) {
	s.Points = append(s.Points, Point{At: at, Value: v})
}

// Last returns the final value (0 when empty).
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].Value
}

// ValueAt returns the value of the latest point at or before t.
func (s *Series) ValueAt(t time.Duration) float64 {
	v := 0.0
	for _, p := range s.Points {
		if p.At > t {
			break
		}
		v = p.Value
	}
	return v
}

// Plateaus counts maximal runs of >= minLen consecutive points with an
// unchanged value, excluding leading zeros and the final saturated
// value. It quantifies the staircase shape of the replica curve in
// figure 9 (the discrete 60 s replication).
func (s *Series) Plateaus(minLen int) int {
	if len(s.Points) == 0 {
		return 0
	}
	final := s.Points[len(s.Points)-1].Value
	count := 0
	run := 1
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Value == s.Points[i-1].Value {
			run++
		} else {
			if run >= minLen && s.Points[i-1].Value != 0 && s.Points[i-1].Value != final {
				count++
			}
			run = 1
		}
	}
	return count
}

// Table renders aligned columns for figure output.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case time.Duration:
			row[i] = FormatDuration(v)
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the formatted cell at (row, col).
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "# %s\n", t.Title)
	}
	var head strings.Builder
	for i, c := range t.Columns {
		fmt.Fprintf(&head, "%-*s  ", widths[i], c)
	}
	fmt.Fprintln(w, strings.TrimRight(head.String(), " "))
	for _, row := range t.rows {
		var line strings.Builder
		for i, cell := range row {
			fmt.Fprintf(&line, "%-*s  ", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(line.String(), " "))
	}
}

// MarshalJSON renders the table as a machine-readable object — title,
// column headers, and the already-formatted cell strings — so tools
// consuming rpcv-bench -json output parse exactly the values the text
// tables display.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}{t.Title, t.Columns, rows})
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Write(&b)
	return b.String()
}

// FormatDuration renders durations with three significant figures and
// stable units, so tables stay aligned across magnitudes.
func FormatDuration(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.3gus", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.3gms", float64(d)/float64(time.Millisecond))
	case d < time.Minute:
		return fmt.Sprintf("%.3gs", d.Seconds())
	default:
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
}

// FormatBytes renders byte counts compactly (powers of ten, as the
// paper's x-axes do).
func FormatBytes(n int) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.3gGB", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.3gMB", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.3gKB", float64(n)/1e3)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
